// Package slicer is the public API of dynslice, a reproduction of
// "Cost Effective Dynamic Program Slicing" (Zhang & Gupta, PLDI 2004).
//
// The package compiles MiniC programs, executes them under an
// instrumenting interpreter, and answers dynamic slicing queries with any
// of the paper's three algorithms:
//
//   - FP: the full dynamic dependence graph, every dependence instance
//     labeled with a timestamp pair (paper §2),
//   - LP: demand-driven backward traversal of an on-disk execution trace
//     with summary-guided segment skipping (the paper's prior algorithm),
//   - OPT: the paper's contribution — a compacted dependence graph whose
//     labels are mostly inferred from statically introduced unlabeled
//     edges (OPT-1 … OPT-6 plus shortcut edges).
//
// Typical use:
//
//	p, _ := slicer.Compile(src)
//	rec, _ := p.Record(slicer.RunOptions{Input: []int64{42}})
//	defer rec.Close()
//	s, _ := rec.OPT().SliceVar("result")
//	fmt.Println(s.Lines) // source lines the final value of result depends on
package slicer

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dynslice/internal/compile"
	"dynslice/internal/interp"
	"dynslice/internal/ir"
	"dynslice/internal/profile"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/fp"
	"dynslice/internal/slicing/lp"
	"dynslice/internal/slicing/opt"
	"dynslice/internal/slicing/snapshot"
	"dynslice/internal/telemetry"
	"dynslice/internal/telemetry/querylog"
	"dynslice/internal/telemetry/stats"
	"dynslice/internal/trace"
)

// Program is a compiled MiniC program.
type Program struct {
	ir *ir.Program
}

// Compile parses, checks, lowers, and analyzes MiniC source text.
func Compile(src string) (*Program, error) {
	return CompileWith(src, nil)
}

// CompileWith is Compile with telemetry: compile-phase spans and
// program-shape gauges land on reg. A nil registry costs nothing.
func CompileWith(src string, reg *telemetry.Registry) (*Program, error) {
	p, err := compile.SourceWith(src, reg)
	if err != nil {
		return nil, err
	}
	return &Program{ir: p}, nil
}

// IR returns the analyzed intermediate representation (read-only).
func (p *Program) IR() *ir.Program { return p.ir }

// DumpIR renders the lowered program for inspection.
func (p *Program) DumpIR() string { return p.ir.Dump() }

// RunOptions configures Record.
type RunOptions struct {
	Input    []int64 // values consumed by input()
	MaxSteps int64   // statement budget (0 = interp.DefaultMaxSteps)
	TraceDir string  // where the trace file is written (default: temp dir)
	// OptConfig overrides the OPT configuration (default: opt.Full()).
	OptConfig *opt.Config
	// PlainLabels disables the delta-varint block compaction of dependence
	// labels in the FP and OPT graphs (the -compact=false escape hatch;
	// see docs/PERFORMANCE.md "Memory layout"). Slices are identical either
	// way.
	PlainLabels bool
	// SequentialBuild disables the pipelined build: graph builders run
	// inline on the interpreter's goroutine instead of concurrently on
	// batched event feeds. The graphs are identical either way (see
	// docs/PERFORMANCE.md).
	SequentialBuild bool
	// Telemetry receives phase spans and pipeline counters for this
	// recording and its slicers. Nil disables collection at near-zero
	// cost (see docs/OBSERVABILITY.md).
	Telemetry *telemetry.Registry
	// QueryLog receives one audit record per slicing query answered
	// against this recording (single, batched, cached, or observed) —
	// the query flight recorder. Nil disables recording at the cost of
	// one nil check per query (see docs/OBSERVABILITY.md).
	QueryLog *querylog.Log
	// QueryStats accumulates per-backend rolling workload statistics
	// (latency quantiles, EWMA, cache hit rate, inferred-edge ratio)
	// over the same query stream — the cost-based planner's feedback
	// input. Nil disables collection.
	QueryStats *stats.Recorder
	// TrackCriteria, when positive, records up to this many slicing
	// criteria during the instrumented run (distinct addresses, most
	// recently defined first — the paper's selection), retrievable via
	// Recording.Criteria.
	TrackCriteria int
	// Snapshot enables the persistent graph cache: with Read set, Record
	// first looks for an on-disk graph image content-addressed by
	// (program, input, configuration) and, on a hit, returns a recording
	// without executing the program at all; with Write set, a freshly
	// built recording is saved back. See docs/PERFORMANCE.md "Snapshot
	// format".
	Snapshot SnapshotOptions
}

// SnapshotOptions configures the persistent graph cache (see
// RunOptions.Snapshot).
type SnapshotOptions struct {
	// Dir is the cache directory; empty means the per-user default
	// (os.UserCacheDir()/dynslice/snapshots).
	Dir string
	// Read makes Record try to load a cached graph image before running
	// the program. A corrupt or mismatched image is counted
	// (engine.snapshot.fallback, snapshot.read.err.<class>) and falls
	// back to a fresh build — never an error, never a wrong slice.
	Read bool
	// Write makes Record save the built graphs after a fresh build (or a
	// cache miss). Write failures are counted (snapshot.write.err) but do
	// not fail the recording.
	Write bool
}

// Recording is one instrumented execution: its outputs, its on-disk trace,
// and the dependence graphs built from it.
type Recording struct {
	p       *Program
	Output  []int64
	Steps   int64
	Return  int64
	path    string
	cleanup func()
	tel     *telemetry.Registry
	qlog    *querylog.Log
	qstats  *stats.Recorder
	crit    []int64
	source  string // "build" or "snapshot"

	segs    []*trace.Segment
	fpG     *fp.Graph
	optG    *opt.Graph
	lpS     *lp.Slicer
	optCfg  opt.Config
	hot     []*profile.PathProfile
	cuts    *profile.Cuts
	lastErr error
}

// Record runs the program twice — once to collect the Ball-Larus path
// profile (as the paper does), once instrumented — building the FP and OPT
// graphs online and writing the trace file the LP slicer reads.
func (p *Program) Record(o RunOptions) (*Recording, error) {
	rec := &Recording{p: p, optCfg: opt.Full(), tel: o.Telemetry, qlog: o.QueryLog, qstats: o.QueryStats, source: "build"}
	if o.OptConfig != nil {
		rec.optCfg = *o.OptConfig
	}
	if o.PlainLabels {
		rec.optCfg.PlainLabels = true
	}
	span := o.Telemetry.StartSpan("record")
	defer span.End()

	// Persistent graph cache: resolve the content address first; a hit
	// answers the whole Record call without executing the program.
	var cache *snapshot.Cache
	var key snapshot.Key
	if o.Snapshot.Read || o.Snapshot.Write {
		var err error
		if cache, err = snapshot.NewCache(o.Snapshot.Dir); err != nil {
			if reg := o.Telemetry; reg != nil {
				reg.Counter("snapshot.cache.err").Inc()
			}
			cache = nil // cache trouble disables snapshotting, never the build
		} else {
			key = snapshot.Key{
				Program: snapshot.HashProgram(p.ir),
				Input:   snapshot.HashInput(o.Input, o.MaxSteps),
				Config:  snapshot.HashConfig(configFingerprint(rec.optCfg, o.PlainLabels, o.TrackCriteria)),
			}
		}
	}
	if cache != nil && o.Snapshot.Read {
		if hit := p.loadSnapshot(cache, key, o, rec.optCfg); hit != nil {
			return hit, nil
		}
	}

	sp := span.Child("profile")
	col := profile.NewCollector(p.ir)
	_, err := interp.Run(p.ir, interp.Options{Input: o.Input, MaxSteps: o.MaxSteps, Sink: col, Telemetry: o.Telemetry})
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("slicer: profiling run: %w", err)
	}
	rec.hot = col.HotPaths(1, 0)
	rec.cuts = col.Cuts()

	dir := o.TraceDir
	var tmp string
	if dir == "" {
		tmp, err = os.MkdirTemp("", "dynslice")
		if err != nil {
			return nil, err
		}
		dir = tmp
	}
	rec.path = filepath.Join(dir, "run.trace")
	tracePath := rec.path
	rec.cleanup = func() {
		// The trace file may live in a caller-supplied directory; remove
		// it explicitly before removing our own temp dir (if any).
		os.Remove(tracePath)
		if tmp != "" {
			os.RemoveAll(tmp)
		}
	}
	// Until the recording is complete, every error return must release
	// what was created so far (trace file, temp dir).
	ok := false
	defer func() {
		if !ok {
			rec.Close()
		}
	}()
	f, err := os.Create(rec.path)
	if err != nil {
		return nil, err
	}
	tw := trace.NewWriter(p.ir, f, 4096)
	tw.SetMetrics(trace.NewMetrics(o.Telemetry))
	rec.fpG = fp.NewGraph(p.ir)
	rec.fpG.SetPlainLabels(o.PlainLabels)
	rec.fpG.SetTelemetry(o.Telemetry)
	rec.optG = opt.NewGraph(p.ir, rec.optCfg, rec.hot, rec.cuts)
	rec.optG.SetTelemetry(o.Telemetry)
	// By default the graph builders run as pipelined Async sinks: the
	// interpreter batches events into pooled buffers and each builder
	// consumes its own feed concurrently. The trace writer stays inline
	// so trace I/O errors surface synchronously.
	sink := trace.Multi{tw, rec.fpG, rec.optG}
	var picker *trace.CritPicker
	if o.TrackCriteria > 0 {
		picker = trace.NewCritPicker()
	}
	var asyncs []*trace.Async
	if !o.SequentialBuild {
		// An attached timeline (telemetry.AttachTimeline) gives each
		// builder worker its own named row of per-batch activity.
		tl := o.Telemetry.Timeline()
		// Epoch-parallel block sealing rides along with the pipelined
		// build: each builder ships filled label epochs to encode workers
		// instead of delta-varint compressing them inline.
		rec.fpG.SetParallelEncode(0)
		rec.optG.SetParallelEncode(0)
		afp := trace.NewAsync(rec.fpG, trace.PipelineConfig{Timeline: tl, TimelineNames: []string{"fp-build"}})
		aopt := trace.NewAsync(rec.optG, trace.PipelineConfig{Timeline: tl, TimelineNames: []string{"opt-build"}})
		asyncs = []*trace.Async{afp, aopt}
		sink = trace.Multi{tw, afp, aopt}
	}
	if picker != nil {
		// Criterion tracking stays inline: the picker is cheap (two map
		// stores per defining statement) and must see the full run.
		sink = append(sink, picker)
	}
	sp = span.Child("interp")
	res, err := interp.Run(p.ir, interp.Options{
		Input:     o.Input,
		MaxSteps:  o.MaxSteps,
		Sink:      sink,
		Telemetry: o.Telemetry,
	})
	sp.End()
	if err != nil {
		// The interpreter never delivered End; drain the async builders
		// so their goroutines exit before we tear the recording down.
		for _, a := range asyncs {
			a.Close()
		}
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if tw.Err() != nil {
		return nil, tw.Err()
	}
	rec.segs = tw.Segments()
	rec.lpS = lp.New(p.ir, rec.path, rec.segs)
	rec.lpS.SetTelemetry(o.Telemetry)
	rec.Output = res.Output
	rec.Steps = res.Steps
	rec.Return = res.ReturnValue
	if picker != nil {
		rec.crit = picker.Pick(o.TrackCriteria)
	}
	ok = true
	if cache != nil && o.Snapshot.Write {
		rec.writeSnapshot(cache, key)
	}
	return rec, nil
}

// configFingerprint renders every knob that shapes the built graphs (and
// therefore the snapshot bytes) into the stable string the cache key's
// Config digest covers. Telemetry, logging, and build parallelism are
// deliberately absent: they do not change the graph.
func configFingerprint(cfg opt.Config, fpPlain bool, trackCriteria int) string {
	return fmt.Sprintf("opt=%+v|fpplain=%t|crit=%d", cfg, fpPlain, trackCriteria)
}

// loadSnapshot tries to answer Record from the cache. It returns nil on
// any miss — absent file, corrupt file, mismatched key — counting the
// reason; the caller falls back to a fresh build.
func (p *Program) loadSnapshot(cache *snapshot.Cache, key snapshot.Key, o RunOptions, cfg opt.Config) *Recording {
	path := cache.Path(key)
	fi, err := os.Stat(path)
	if err != nil {
		if reg := o.Telemetry; reg != nil {
			reg.Counter("engine.snapshot.miss").Inc()
		}
		return nil
	}
	t0 := time.Now()
	img, err := snapshot.Read(path, p.ir, key)
	if err != nil {
		if reg := o.Telemetry; reg != nil {
			reg.Counter("snapshot.read.err." + snapshot.Classify(err)).Inc()
			reg.Counter("engine.snapshot.fallback").Inc()
		}
		return nil
	}
	if reg := o.Telemetry; reg != nil {
		reg.Counter("engine.snapshot.hit").Inc()
		reg.Counter("snapshot.load.ns").Add(time.Since(t0).Nanoseconds())
		reg.Counter("snapshot.load.bytes").Add(fi.Size())
	}
	rec := &Recording{
		p: p, optCfg: cfg, tel: o.Telemetry, qlog: o.QueryLog, qstats: o.QueryStats,
		source: "snapshot",
		Output: img.Output, Steps: img.Steps, Return: img.Return, crit: img.Criteria,
		segs: img.Segs, fpG: img.FP, optG: img.OPT,
	}
	rec.fpG.SetTelemetry(o.Telemetry)
	rec.optG.SetTelemetry(o.Telemetry)
	return rec
}

// writeSnapshot saves the built graphs to the cache. Failures are counted
// but never fail the recording: the snapshot is an accelerator, not an
// output.
func (r *Recording) writeSnapshot(cache *snapshot.Cache, key snapshot.Key) {
	img := &snapshot.Image{
		Output: r.Output, Steps: r.Steps, Return: r.Return, Criteria: r.crit,
		Segs: r.segs, FP: r.fpG, OPT: r.optG,
	}
	t0 := time.Now()
	n, err := snapshot.Write(cache.Path(key), key, img)
	if reg := r.tel; reg != nil {
		if err != nil {
			reg.Counter("snapshot.write.err").Inc()
			return
		}
		reg.Counter("snapshot.write.ns").Add(time.Since(t0).Nanoseconds())
		reg.Counter("snapshot.write.bytes").Add(n)
	}
}

// Close removes temporary artifacts (the trace file and, when Record
// created one, its temp directory). Closing twice is a no-op; a
// Recording whose trace was removed can no longer answer LP queries.
func (r *Recording) Close() {
	if r.cleanup != nil {
		r.cleanup()
		r.cleanup = nil
	}
}

// TracePath returns the on-disk trace file location (empty until Record
// has created it; invalid after Close).
func (r *Recording) TracePath() string { return r.path }

// Telemetry returns the registry attached via RunOptions, or nil.
func (r *Recording) Telemetry() *telemetry.Registry { return r.tel }

// QueryLog returns the query flight recorder attached via RunOptions,
// or nil.
func (r *Recording) QueryLog() *querylog.Log { return r.qlog }

// QueryStats returns the workload-statistics recorder attached via
// RunOptions, or nil.
func (r *Recording) QueryStats() *stats.Recorder { return r.qstats }

// Criteria returns the slicing criteria tracked during the instrumented
// run (RunOptions.TrackCriteria): distinct defined addresses, most
// recently defined first. Empty when tracking was off.
func (r *Recording) Criteria() []int64 { return r.crit }

// Source reports where this recording's graphs came from: "build" (fresh
// instrumented execution) or "snapshot" (loaded from the persistent
// graph cache). Every audit record the recording emits carries the same
// value.
func (r *Recording) Source() string { return r.source }

// queryObserved reports whether per-query audit recording is attached.
// When false, the query path pays exactly two nil checks (the
// TestOverhead guard covers this).
func (r *Recording) queryObserved() bool { return r.qlog != nil || r.qstats != nil }

// logQuery publishes one finished query's audit record to the flight
// recorder and the rolling workload statistics.
func (r *Recording) logQuery(qr querylog.Record) {
	qr.Source = r.source
	r.qlog.Add(qr)
	if r.qstats != nil {
		r.qstats.ObserveQuery(qr.Backend, qr.Latency, qr.Batch, qr.CacheHit, qr.Err != "")
		if qr.Kind == querylog.KindExplain {
			r.qstats.ObserveEdges(qr.Backend, qr.Explicit, qr.Inferred, qr.Shortcut)
		}
	}
}

// Slice is a slicing result mapped back to the source program.
type Slice struct {
	// Lines are the distinct source lines in the slice, ascending.
	Lines []int
	// Stmts is the number of IR statements in the slice.
	Stmts int
	// Time is the wall-clock cost of the query.
	Time time.Duration
	// QueryID is the flight-recorder ID of the query that computed this
	// slice (0 when no query log was attached). A cached result keeps
	// the ID of the query that originally computed it; the cache hit
	// itself is audited under its own ID.
	QueryID uint64
	raw     *slicing.Slice
}

// HasLine reports whether the slice contains the given source line.
func (s *Slice) HasLine(line int) bool {
	for _, l := range s.Lines {
		if l == line {
			return true
		}
	}
	return false
}

// Raw exposes the underlying statement set.
func (s *Slice) Raw() *slicing.Slice { return s.raw }

// Slicer answers slicing queries against one algorithm's graph.
type Slicer struct {
	rec  *Recording
	name string
	impl slicing.MultiSlicer
}

// FP returns the full-graph slicer.
func (r *Recording) FP() *Slicer { return &Slicer{rec: r, name: "FP", impl: r.fpG} }

// OPT returns the compacted-graph slicer (the paper's algorithm).
func (r *Recording) OPT() *Slicer { return &Slicer{rec: r, name: "OPT", impl: r.optG} }

// LP returns the demand-driven trace slicer. A snapshot-loaded recording
// has no trace file, so its LP slicer answers every query with an error
// (snapshots persist the graphs, not the execution trace).
func (r *Recording) LP() *Slicer {
	if r.lpS == nil {
		return &Slicer{rec: r, name: "LP", impl: unavailableSlicer{errLPSnapshot}}
	}
	return &Slicer{rec: r, name: "LP", impl: r.lpS}
}

// errLPSnapshot is returned by LP queries against snapshot-loaded
// recordings.
var errLPSnapshot = errors.New("slicer: LP is unavailable for a snapshot-loaded recording (no trace file)")

// unavailableSlicer rejects every query with a fixed error.
type unavailableSlicer struct{ err error }

func (u unavailableSlicer) Slice(slicing.Criterion) (*slicing.Slice, *slicing.Stats, error) {
	return nil, nil, u.err
}

func (u unavailableSlicer) SliceAll([]slicing.Criterion) ([]*slicing.Slice, *slicing.Stats, error) {
	return nil, nil, u.err
}

// Name reports which algorithm this slicer uses.
func (s *Slicer) Name() string { return s.name }

// SliceAddr slices on the last definition of the given memory address.
func (s *Slicer) SliceAddr(addr int64) (*Slice, error) {
	var id uint64
	obs := s.rec.queryObserved()
	if obs {
		id = s.rec.qlog.NextID()
	}
	t0 := time.Now()
	raw, st, err := s.impl.Slice(slicing.AddrCriterion(addr))
	elapsed := time.Since(t0)
	if err != nil {
		if obs {
			s.rec.logQuery(querylog.Record{
				ID: id, Start: t0, Backend: s.name, Kind: querylog.KindSlice,
				Addr: addr, Latency: elapsed, Err: querylog.Classify(err),
			})
		}
		return nil, err
	}
	if reg := s.rec.tel; reg != nil {
		reg.ObserveSpan("slice/"+s.name, elapsed)
		reg.Counter("slice.queries").Inc()
		reg.Histogram("slice.size").Observe(int64(raw.Len()))
		if st != nil {
			reg.Counter("slice.instances").Add(st.Instances)
			reg.Counter("slice.label_probes").Add(st.LabelProbes)
		}
	}
	sl := &Slice{
		Lines:   raw.Lines(s.rec.p.ir),
		Stmts:   raw.Len(),
		Time:    elapsed,
		QueryID: id,
		raw:     raw,
	}
	if obs {
		qr := querylog.Record{
			ID: id, Start: t0, Backend: s.name, Kind: querylog.KindSlice,
			Addr: addr, Latency: elapsed, Stmts: sl.Stmts, Lines: len(sl.Lines),
		}
		if st != nil {
			qr.Instances = st.Instances
			qr.LabelProbes = st.LabelProbes
		}
		s.rec.logQuery(qr)
	}
	return sl, nil
}

// SliceAddrs answers a batch of address criteria in one shared backward
// traversal (slicing.MultiSlicer): results are identical to calling
// SliceAddr per address, but visited state, label resolution, and — for
// LP — trace segment scans are shared across the whole batch.
func (s *Slicer) SliceAddrs(addrs []int64) ([]*Slice, error) {
	if len(addrs) == 0 {
		return nil, nil
	}
	cs := make([]slicing.Criterion, len(addrs))
	for i, a := range addrs {
		cs[i] = slicing.AddrCriterion(a)
	}
	obs := s.rec.queryObserved()
	t0 := time.Now()
	raws, st, err := s.impl.SliceAll(cs)
	elapsed := time.Since(t0)
	if err != nil {
		if obs {
			s.rec.logQuery(querylog.Record{
				ID: s.rec.qlog.NextID(), Start: t0, Backend: s.name,
				Kind: querylog.KindBatch, Addr: addrs[0], Batch: len(addrs),
				Latency: elapsed, Err: querylog.Classify(err),
			})
		}
		return nil, err
	}
	if reg := s.rec.tel; reg != nil {
		reg.ObserveSpan("slice/"+s.name, elapsed)
		reg.Counter("slice.queries").Add(int64(len(addrs)))
		if st != nil {
			reg.Counter("slice.instances").Add(st.Instances)
			reg.Counter("slice.label_probes").Add(st.LabelProbes)
		}
	}
	outs := make([]*Slice, len(raws))
	for i, raw := range raws {
		if reg := s.rec.tel; reg != nil {
			reg.Histogram("slice.size").Observe(int64(raw.Len()))
		}
		var id uint64
		if obs {
			id = s.rec.qlog.NextID()
		}
		outs[i] = &Slice{
			Lines:   raw.Lines(s.rec.p.ir),
			Stmts:   raw.Len(),
			Time:    elapsed / time.Duration(len(raws)),
			QueryID: id,
			raw:     raw,
		}
		if obs {
			// One audit record per criterion; the batch's wall time is
			// shared evenly, and the batch-aggregate traversal stats ride
			// on the first record.
			qr := querylog.Record{
				ID: id, Start: t0, Backend: s.name, Kind: querylog.KindBatch,
				Addr: addrs[i], Batch: len(addrs), Latency: outs[i].Time,
				Stmts: outs[i].Stmts, Lines: len(outs[i].Lines),
			}
			if i == 0 && st != nil {
				qr.Instances = st.Instances
				qr.LabelProbes = st.LabelProbes
			}
			s.rec.logQuery(qr)
		}
	}
	return outs, nil
}

// SliceVar slices on the last definition of a global scalar variable.
func (s *Slicer) SliceVar(name string) (*Slice, error) {
	addr, err := s.rec.p.GlobalAddr(name)
	if err != nil {
		return nil, err
	}
	return s.SliceAddr(addr)
}

// GlobalAddr returns the address of a global scalar (or the first element
// of a global array).
func (p *Program) GlobalAddr(name string) (int64, error) {
	for _, o := range p.ir.Globals {
		if o.Name == name {
			return interp.GlobalBase + o.Off, nil
		}
	}
	return 0, fmt.Errorf("slicer: no global named %q", name)
}

// GraphStats summarizes the two in-memory dependence graphs, mirroring the
// quantities the paper's tables report.
type GraphStats struct {
	FPLabelPairs  int64
	OPTLabelPairs int64
	FPSizeBytes   int64
	OPTSizeBytes  int64
	StaticEdges   int64
	PathNodes     int
}

// Stats returns graph statistics for this recording.
func (r *Recording) Stats() GraphStats {
	return GraphStats{
		FPLabelPairs:  r.fpG.LabelPairs(),
		OPTLabelPairs: r.optG.LabelPairs(),
		FPSizeBytes:   r.fpG.SizeBytes(),
		OPTSizeBytes:  r.optG.SizeBytes(),
		StaticEdges:   r.optG.StaticEdges(),
		PathNodes:     r.optG.PathNodes(),
	}
}
