// Package slicer is the public API of dynslice, a reproduction of
// "Cost Effective Dynamic Program Slicing" (Zhang & Gupta, PLDI 2004).
//
// The package compiles MiniC programs, executes them under an
// instrumenting interpreter, and answers dynamic slicing queries with any
// of the paper's three algorithms:
//
//   - FP: the full dynamic dependence graph, every dependence instance
//     labeled with a timestamp pair (paper §2),
//   - LP: demand-driven backward traversal of an on-disk execution trace
//     with summary-guided segment skipping (the paper's prior algorithm),
//   - OPT: the paper's contribution — a compacted dependence graph whose
//     labels are mostly inferred from statically introduced unlabeled
//     edges (OPT-1 … OPT-6 plus shortcut edges).
//
// Typical use:
//
//	p, _ := slicer.Compile(src)
//	rec, _ := p.Record(slicer.RunOptions{Input: []int64{42}})
//	defer rec.Close()
//	s, _ := rec.OPT().SliceVar("result")
//	fmt.Println(s.Lines) // source lines the final value of result depends on
package slicer

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dynslice/internal/compile"
	"dynslice/internal/interp"
	"dynslice/internal/ir"
	"dynslice/internal/profile"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/forward"
	"dynslice/internal/slicing/fp"
	"dynslice/internal/slicing/lp"
	"dynslice/internal/slicing/opt"
	"dynslice/internal/slicing/plan"
	"dynslice/internal/slicing/reexec"
	"dynslice/internal/slicing/snapshot"
	"dynslice/internal/telemetry"
	"dynslice/internal/telemetry/qtrace"
	"dynslice/internal/telemetry/querylog"
	"dynslice/internal/telemetry/stats"
	"dynslice/internal/trace"
)

// Program is a compiled MiniC program.
type Program struct {
	ir *ir.Program
}

// Compile parses, checks, lowers, and analyzes MiniC source text.
func Compile(src string) (*Program, error) {
	return CompileWith(src, nil)
}

// CompileWith is Compile with telemetry: compile-phase spans and
// program-shape gauges land on reg. A nil registry costs nothing.
func CompileWith(src string, reg *telemetry.Registry) (*Program, error) {
	p, err := compile.SourceWith(src, reg)
	if err != nil {
		return nil, err
	}
	return &Program{ir: p}, nil
}

// IR returns the analyzed intermediate representation (read-only).
func (p *Program) IR() *ir.Program { return p.ir }

// DumpIR renders the lowered program for inspection.
func (p *Program) DumpIR() string { return p.ir.Dump() }

// RunOptions configures Record.
type RunOptions struct {
	Input    []int64 // values consumed by input()
	MaxSteps int64   // statement budget (0 = interp.DefaultMaxSteps)
	TraceDir string  // where the trace file is written (default: temp dir)
	// OptConfig overrides the OPT configuration (default: opt.Full()).
	OptConfig *opt.Config
	// PlainLabels disables the delta-varint block compaction of dependence
	// labels in the FP and OPT graphs (the -compact=false escape hatch;
	// see docs/PERFORMANCE.md "Memory layout"). Slices are identical either
	// way.
	PlainLabels bool
	// SequentialBuild disables the pipelined build: graph builders run
	// inline on the interpreter's goroutine instead of concurrently on
	// batched event feeds. The graphs are identical either way (see
	// docs/PERFORMANCE.md).
	SequentialBuild bool
	// Telemetry receives phase spans and pipeline counters for this
	// recording and its slicers. Nil disables collection at near-zero
	// cost (see docs/OBSERVABILITY.md).
	Telemetry *telemetry.Registry
	// QueryLog receives one audit record per slicing query answered
	// against this recording (single, batched, cached, or observed) —
	// the query flight recorder. Nil disables recording at the cost of
	// one nil check per query (see docs/OBSERVABILITY.md).
	QueryLog *querylog.Log
	// QueryStats accumulates per-backend rolling workload statistics
	// (latency quantiles, EWMA, cache hit rate, inferred-edge ratio)
	// over the same query stream — the cost-based planner's feedback
	// input. Nil disables collection.
	QueryStats *stats.Recorder
	// QueryTrace captures per-query causal span trees: the planner
	// decision, each fallback-ladder rung, backend execution, lazy graph
	// builds, and snapshot load, retained under the tracer's tail-based
	// sampling policy (see internal/telemetry/qtrace and
	// docs/OBSERVABILITY.md "Per-query tracing"). Nil disables tracing
	// at the cost of nil checks on the query path.
	QueryTrace *qtrace.Tracer
	// TrackCriteria, when positive, records up to this many slicing
	// criteria during the instrumented run (distinct addresses, most
	// recently defined first — the paper's selection), retrievable via
	// Recording.Criteria.
	TrackCriteria int
	// Snapshot enables the persistent graph cache: with Read set, Record
	// first looks for an on-disk graph image content-addressed by
	// (program, input, configuration) and, on a hit, returns a recording
	// without executing the program at all; with Write set, a freshly
	// built recording is saved back. See docs/PERFORMANCE.md "Snapshot
	// format".
	Snapshot SnapshotOptions
	// DeferGraphs skips the FP and OPT graph construction during Record:
	// only the trace file (and segment summaries) are produced, and the
	// graphs are built lazily — by replaying the trace — the first time
	// an FP or OPT query needs them. A rare-query workload answered by
	// the re-execution or LP backend then never pays graph construction
	// at all. Ignored when Snapshot.Write is set (the snapshot needs the
	// graphs). See docs/PLANNER.md.
	DeferGraphs bool
	// CheckpointEvery captures an interpreter checkpoint every N block
	// executions during the instrumented run, giving the re-execution
	// backend resume points (see internal/slicing/reexec). 0 picks a
	// default (one checkpoint per trace segment) when DeferGraphs is
	// set and disables capture otherwise; negative always disables.
	CheckpointEvery int64
	// Planner supplies the cost-based query planner consulted by
	// Recording.Engine. Nil creates a fresh one seeded from this
	// recording's features. See docs/PLANNER.md.
	Planner *plan.Planner
	// WithForward additionally computes the forward-slicing index during
	// the instrumented run (precomputed slice sets; O(1) queries, no
	// explain support). It becomes a planner candidate.
	WithForward bool
}

// SnapshotOptions configures the persistent graph cache (see
// RunOptions.Snapshot).
type SnapshotOptions struct {
	// Dir is the cache directory; empty means the per-user default
	// (os.UserCacheDir()/dynslice/snapshots).
	Dir string
	// Read makes Record try to load a cached graph image before running
	// the program. A corrupt or mismatched image is counted
	// (engine.snapshot.fallback, snapshot.read.err.<class>) and falls
	// back to a fresh build — never an error, never a wrong slice.
	Read bool
	// Write makes Record save the built graphs after a fresh build (or a
	// cache miss). Write failures are counted (snapshot.write.err) but do
	// not fail the recording.
	Write bool
}

// Recording is one instrumented execution: its outputs, its on-disk trace,
// and the dependence graphs built from it.
type Recording struct {
	p       *Program
	Output  []int64
	Steps   int64
	Return  int64
	path    string
	cleanup func()
	tel     *telemetry.Registry
	qlog    *querylog.Log
	qstats  *stats.Recorder
	qtr     *qtrace.Tracer
	crit    []int64
	source  string // "build" or "snapshot"

	segs    []*trace.Segment
	fpG     *fp.Graph
	optG    *opt.Graph
	lpS     *lp.Slicer
	reexecS *reexec.Slicer
	fwd     *forward.Slicer
	optCfg  opt.Config
	hot     []*profile.PathProfile
	cuts    *profile.Cuts
	lastErr error

	// Inputs of the instrumented run, kept so the re-execution backend
	// (and deferred graph builds) can regenerate it.
	input       []int64
	maxSteps    int64
	totalBlocks int64
	fpPlain     bool

	// Deferred graph construction (RunOptions.DeferGraphs): fpG/optG stay
	// nil until first use; buildMu serializes the lazy builds and guards
	// the graph fields against concurrent planner availability checks.
	deferred      bool
	buildMu       sync.Mutex
	fpErr, optErr error
	planner       *plan.Planner
}

// Record runs the program twice — once to collect the Ball-Larus path
// profile (as the paper does), once instrumented — building the FP and OPT
// graphs online and writing the trace file the LP slicer reads.
func (p *Program) Record(o RunOptions) (*Recording, error) {
	// The recording itself gets a causal trace (kind "record"): profile
	// run, snapshot load, and the instrumented run with its trace write
	// each render as a span. Retention follows the query policy — a
	// snapshot miss marks the trace cache-missed.
	qt := o.QueryTrace.StartQuery("record", 0, 0)
	rec, err := p.record(o, qt)
	if err != nil {
		qt.SetError(querylog.Classify(err))
	}
	o.QueryTrace.Finish(qt)
	return rec, err
}

func (p *Program) record(o RunOptions, qt *qtrace.Trace) (*Recording, error) {
	rec := &Recording{p: p, optCfg: opt.Full(), tel: o.Telemetry, qlog: o.QueryLog, qstats: o.QueryStats, qtr: o.QueryTrace, source: "build"}
	if o.OptConfig != nil {
		rec.optCfg = *o.OptConfig
	}
	if o.PlainLabels {
		rec.optCfg.PlainLabels = true
	}
	span := o.Telemetry.StartSpan("record")
	defer span.End()

	// Persistent graph cache: resolve the content address first; a hit
	// answers the whole Record call without executing the program.
	var cache *snapshot.Cache
	var key snapshot.Key
	if o.Snapshot.Read || o.Snapshot.Write {
		var err error
		if cache, err = snapshot.NewCache(o.Snapshot.Dir); err != nil {
			if reg := o.Telemetry; reg != nil {
				reg.Counter("snapshot.cache.err").Inc()
			}
			cache = nil // cache trouble disables snapshotting, never the build
		} else {
			key = snapshot.Key{
				Program: snapshot.HashProgram(p.ir),
				Input:   snapshot.HashInput(o.Input, o.MaxSteps),
				Config:  snapshot.HashConfig(configFingerprint(rec.optCfg, o.PlainLabels, o.TrackCriteria)),
			}
		}
	}
	if cache != nil && o.Snapshot.Read {
		lsp := qt.Root().Child("snapshot-load")
		hit := p.loadSnapshot(cache, key, o, rec.optCfg, lsp)
		lsp.End()
		if hit != nil {
			qt.SetCacheHit()
			return hit, nil
		}
		qt.SetCacheMiss()
	}

	sp := span.Child("profile")
	qsp := qt.Root().Child("profile")
	col := profile.NewCollector(p.ir)
	_, err := interp.Run(p.ir, interp.Options{Input: o.Input, MaxSteps: o.MaxSteps, Sink: col, Telemetry: o.Telemetry})
	sp.End()
	qsp.End()
	if err != nil {
		return nil, fmt.Errorf("slicer: profiling run: %w", err)
	}
	rec.hot = col.HotPaths(1, 0)
	rec.cuts = col.Cuts()

	dir := o.TraceDir
	var tmp string
	if dir == "" {
		tmp, err = os.MkdirTemp("", "dynslice")
		if err != nil {
			return nil, err
		}
		dir = tmp
	}
	rec.path = filepath.Join(dir, "run.trace")
	tracePath := rec.path
	rec.cleanup = func() {
		// The trace file may live in a caller-supplied directory; remove
		// it explicitly before removing our own temp dir (if any).
		os.Remove(tracePath)
		if tmp != "" {
			os.RemoveAll(tmp)
		}
	}
	// Until the recording is complete, every error return must release
	// what was created so far (trace file, temp dir).
	ok := false
	defer func() {
		if !ok {
			rec.Close()
		}
	}()
	f, err := os.Create(rec.path)
	if err != nil {
		return nil, err
	}
	tw := trace.NewWriter(p.ir, f, 4096)
	tw.SetMetrics(trace.NewMetrics(o.Telemetry))
	// DeferGraphs skips the online FP/OPT construction entirely (the
	// graphs are replay-built on demand); a snapshot write needs them
	// now, so it overrides the deferral.
	rec.deferred = o.DeferGraphs && !(cache != nil && o.Snapshot.Write)
	rec.fpPlain = o.PlainLabels
	sink := trace.Multi{tw}
	var picker *trace.CritPicker
	if o.TrackCriteria > 0 {
		picker = trace.NewCritPicker()
	}
	var asyncs []*trace.Async
	if !rec.deferred {
		rec.fpG = fp.NewGraph(p.ir)
		rec.fpG.SetPlainLabels(o.PlainLabels)
		rec.fpG.SetTelemetry(o.Telemetry)
		rec.optG = opt.NewGraph(p.ir, rec.optCfg, rec.hot, rec.cuts)
		rec.optG.SetTelemetry(o.Telemetry)
		if o.SequentialBuild {
			sink = append(sink, rec.fpG, rec.optG)
		} else {
			// By default the graph builders run as pipelined Async sinks:
			// the interpreter batches events into pooled buffers and each
			// builder consumes its own feed concurrently. The trace writer
			// stays inline so trace I/O errors surface synchronously. An
			// attached timeline (telemetry.AttachTimeline) gives each
			// builder worker its own named row of per-batch activity.
			tl := o.Telemetry.Timeline()
			// Epoch-parallel block sealing rides along with the pipelined
			// build: each builder ships filled label epochs to encode
			// workers instead of delta-varint compressing them inline.
			rec.fpG.SetParallelEncode(0)
			rec.optG.SetParallelEncode(0)
			afp := trace.NewAsync(rec.fpG, trace.PipelineConfig{Timeline: tl, TimelineNames: []string{"fp-build"}})
			aopt := trace.NewAsync(rec.optG, trace.PipelineConfig{Timeline: tl, TimelineNames: []string{"opt-build"}})
			asyncs = []*trace.Async{afp, aopt}
			sink = append(sink, afp, aopt)
		}
	}
	if o.WithForward {
		// The forward index builder stays inline like the picker: its
		// per-event work is set arithmetic on interned IDs.
		rec.fwd = forward.New(p.ir)
		sink = append(sink, rec.fwd)
	}
	if picker != nil {
		// Criterion tracking stays inline: the picker is cheap (two map
		// stores per defining statement) and must see the full run.
		sink = append(sink, picker)
	}
	// Checkpoint capture feeds the re-execution backend. The default
	// Record path leaves it off; DeferGraphs turns it on (one checkpoint
	// per trace segment) since re-execution is then the expected backend.
	ckEvery := o.CheckpointEvery
	if ckEvery == 0 && rec.deferred {
		ckEvery = 4096
	}
	if ckEvery < 0 {
		ckEvery = 0
	}
	sp = span.Child("interp")
	qsp = qt.Root().Child("interp")
	res, err := interp.Run(p.ir, interp.Options{
		Input:           o.Input,
		MaxSteps:        o.MaxSteps,
		Sink:            sink,
		Telemetry:       o.Telemetry,
		CheckpointEvery: ckEvery,
	})
	sp.End()
	qsp.End()
	if err != nil {
		// The interpreter never delivered End; drain the async builders
		// so their goroutines exit before we tear the recording down.
		for _, a := range asyncs {
			a.Close()
		}
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if tw.Err() != nil {
		return nil, tw.Err()
	}
	rec.segs = tw.Segments()
	// Annotate the instrumented-run span with the trace I/O it produced.
	if qt != nil {
		qsp.Int("steps", res.Steps).Int("blocks", res.BlockExecs).Int("trace_segments", int64(len(rec.segs)))
	}
	rec.lpS = lp.New(p.ir, rec.path, rec.segs)
	rec.lpS.SetTelemetry(o.Telemetry)
	rec.Output = res.Output
	rec.Steps = res.Steps
	rec.Return = res.ReturnValue
	rec.input = o.Input
	rec.maxSteps = o.MaxSteps
	rec.totalBlocks = res.BlockExecs
	rec.reexecS = reexec.New(p.ir, rec.segs, reexec.Options{
		Input:       o.Input,
		MaxSteps:    o.MaxSteps,
		TotalBlocks: res.BlockExecs,
		Checkpoints: res.Checkpoints,
	})
	rec.reexecS.SetTelemetry(o.Telemetry)
	rec.planner = o.Planner
	if rec.planner == nil {
		rec.planner = plan.New()
	}
	rec.planner.Seed(plan.Features{
		TraceBlocks: res.BlockExecs,
		TraceSteps:  res.Steps,
		Segments:    len(rec.segs),
		IRStmts:     len(p.ir.Stmts),
	})
	if picker != nil {
		rec.crit = picker.Pick(o.TrackCriteria)
	}
	ok = true
	if cache != nil && o.Snapshot.Write {
		rec.writeSnapshot(cache, key)
	}
	return rec, nil
}

// configFingerprint renders every knob that shapes the built graphs (and
// therefore the snapshot bytes) into the stable string the cache key's
// Config digest covers. Telemetry, logging, and build parallelism are
// deliberately absent: they do not change the graph.
func configFingerprint(cfg opt.Config, fpPlain bool, trackCriteria int) string {
	return fmt.Sprintf("opt=%+v|fpplain=%t|crit=%d", cfg, fpPlain, trackCriteria)
}

// loadSnapshot tries to answer Record from the cache. It returns nil on
// any miss — absent file, corrupt file, mismatched key — counting the
// reason; the caller falls back to a fresh build. sp (the record
// trace's snapshot-load span) is annotated with the outcome and, on a
// hit, the image size.
func (p *Program) loadSnapshot(cache *snapshot.Cache, key snapshot.Key, o RunOptions, cfg opt.Config, sp qtrace.SpanRef) *Recording {
	path := cache.Path(key)
	fi, err := os.Stat(path)
	if err != nil {
		if reg := o.Telemetry; reg != nil {
			reg.Counter("engine.snapshot.miss").Inc()
		}
		sp.Str("result", "miss")
		return nil
	}
	t0 := time.Now()
	img, err := snapshot.Read(path, p.ir, key)
	if err != nil {
		if reg := o.Telemetry; reg != nil {
			reg.Counter("snapshot.read.err." + snapshot.Classify(err)).Inc()
			reg.Counter("engine.snapshot.fallback").Inc()
		}
		sp.Str("result", "fallback").Str("err_class", snapshot.Classify(err))
		return nil
	}
	if reg := o.Telemetry; reg != nil {
		reg.Counter("engine.snapshot.hit").Inc()
		reg.Counter("snapshot.load.ns").Add(time.Since(t0).Nanoseconds())
		reg.Counter("snapshot.load.bytes").Add(fi.Size())
	}
	sp.Str("result", "hit").Int("bytes", fi.Size())
	rec := &Recording{
		p: p, optCfg: cfg, tel: o.Telemetry, qlog: o.QueryLog, qstats: o.QueryStats,
		qtr:    o.QueryTrace,
		source: "snapshot",
		Output: img.Output, Steps: img.Steps, Return: img.Return, crit: img.Criteria,
		segs: img.Segs, fpG: img.FP, optG: img.OPT,
	}
	rec.fpG.SetTelemetry(o.Telemetry)
	rec.optG.SetTelemetry(o.Telemetry)
	// A snapshot persists the graphs, not the trace — but the inputs are
	// part of the cache key, so the re-execution backend still works: it
	// regenerates any segment from scratch (no checkpoints survive the
	// snapshot round-trip).
	rec.input = o.Input
	rec.maxSteps = o.MaxSteps
	if n := len(img.Segs); n > 0 {
		rec.totalBlocks = img.Segs[n-1].EndOrd
	}
	rec.reexecS = reexec.New(p.ir, rec.segs, reexec.Options{
		Input:       o.Input,
		MaxSteps:    o.MaxSteps,
		TotalBlocks: rec.totalBlocks,
	})
	rec.reexecS.SetTelemetry(o.Telemetry)
	rec.planner = o.Planner
	if rec.planner == nil {
		rec.planner = plan.New()
	}
	rec.planner.Seed(plan.Features{
		TraceBlocks: rec.totalBlocks,
		TraceSteps:  img.Steps,
		Segments:    len(img.Segs),
		IRStmts:     len(p.ir.Stmts),
	})
	return rec
}

// writeSnapshot saves the built graphs to the cache. Failures are counted
// but never fail the recording: the snapshot is an accelerator, not an
// output.
func (r *Recording) writeSnapshot(cache *snapshot.Cache, key snapshot.Key) {
	img := &snapshot.Image{
		Output: r.Output, Steps: r.Steps, Return: r.Return, Criteria: r.crit,
		Segs: r.segs, FP: r.fpG, OPT: r.optG,
	}
	t0 := time.Now()
	n, err := snapshot.Write(cache.Path(key), key, img)
	if reg := r.tel; reg != nil {
		if err != nil {
			reg.Counter("snapshot.write.err").Inc()
			return
		}
		reg.Counter("snapshot.write.ns").Add(time.Since(t0).Nanoseconds())
		reg.Counter("snapshot.write.bytes").Add(n)
	}
}

// Close removes temporary artifacts (the trace file and, when Record
// created one, its temp directory). Closing twice is a no-op; a
// Recording whose trace was removed can no longer answer LP queries.
func (r *Recording) Close() {
	if r.cleanup != nil {
		r.cleanup()
		r.cleanup = nil
	}
}

// TracePath returns the on-disk trace file location (empty until Record
// has created it; invalid after Close).
func (r *Recording) TracePath() string { return r.path }

// Telemetry returns the registry attached via RunOptions, or nil.
func (r *Recording) Telemetry() *telemetry.Registry { return r.tel }

// QueryLog returns the query flight recorder attached via RunOptions,
// or nil.
func (r *Recording) QueryLog() *querylog.Log { return r.qlog }

// QueryStats returns the workload-statistics recorder attached via
// RunOptions, or nil.
func (r *Recording) QueryStats() *stats.Recorder { return r.qstats }

// Criteria returns the slicing criteria tracked during the instrumented
// run (RunOptions.TrackCriteria): distinct defined addresses, most
// recently defined first. Empty when tracking was off.
func (r *Recording) Criteria() []int64 { return r.crit }

// Source reports where this recording's graphs came from: "build" (fresh
// instrumented execution) or "snapshot" (loaded from the persistent
// graph cache). Every audit record the recording emits carries the same
// value.
func (r *Recording) Source() string { return r.source }

// queryObserved reports whether per-query audit recording is attached.
// When false, the query path pays exactly two nil checks (the
// TestOverhead guard covers this).
func (r *Recording) queryObserved() bool { return r.qlog != nil || r.qstats != nil }

// QueryTrace returns the per-query causal tracer attached via
// RunOptions, or nil.
func (r *Recording) QueryTrace() *qtrace.Tracer { return r.qtr }

// finishTrace closes one query's causal trace and, when the tracer
// retained it, links it as the latency-histogram exemplar of the bucket
// the query landed in — the /metrics → /debug/qtrace hop. Safe on nil.
func (r *Recording) finishTrace(t *qtrace.Trace) {
	if t == nil {
		return
	}
	r.qtr.Finish(t)
	if t.Retained() {
		if b := t.Backend(); b != "" {
			r.qstats.ObserveExemplar(b, t.Duration(), t.ID())
		}
	}
}

// logQuery publishes one finished query's audit record to the flight
// recorder and the rolling workload statistics.
func (r *Recording) logQuery(qr querylog.Record) {
	qr.Source = r.source
	r.qlog.Add(qr)
	if r.qstats != nil {
		r.qstats.ObserveQuery(qr.Backend, qr.Latency, qr.Batch, qr.CacheHit, qr.Err != "")
		if qr.Kind == querylog.KindExplain {
			r.qstats.ObserveEdges(qr.Backend, qr.Explicit, qr.Inferred, qr.Shortcut)
		}
	}
}

// Slice is a slicing result mapped back to the source program.
type Slice struct {
	// Lines are the distinct source lines in the slice, ascending.
	Lines []int
	// Stmts is the number of IR statements in the slice.
	Stmts int
	// Time is the wall-clock cost of the query.
	Time time.Duration
	// QueryID is the flight-recorder ID of the query that computed this
	// slice (0 when no query log was attached). A cached result keeps
	// the ID of the query that originally computed it; the cache hit
	// itself is audited under its own ID.
	QueryID uint64
	// TraceID identifies the causal trace of the query that computed
	// this slice (0 when no tracer was attached). When the trace was
	// retained, /debug/qtrace/<id> renders its span tree. Like QueryID,
	// a cached result keeps the computing query's trace.
	TraceID qtrace.TraceID
	raw     *slicing.Slice
}

// HasLine reports whether the slice contains the given source line.
func (s *Slice) HasLine(line int) bool {
	for _, l := range s.Lines {
		if l == line {
			return true
		}
	}
	return false
}

// Raw exposes the underlying statement set.
func (s *Slice) Raw() *slicing.Slice { return s.raw }

// Slicer answers slicing queries against one algorithm's graph.
type Slicer struct {
	rec  *Recording
	name string
	impl slicing.MultiSlicer

	// Planner attribution, set by planned dispatch (Recording.Engine):
	// plan is the backend the planner chose, planReason its rationale
	// (or the fallback cause when this slicer is a later ladder rung).
	// Every dispatch stamps a fresh *Slicer, so these are immutable once
	// queries run.
	plan       string
	planReason string

	// Causal-trace attribution, stamped the same way: qt is the active
	// query trace, qspan the parent span execution spans nest under (the
	// attempt span of this ladder rung, or the root for direct engine
	// dispatch). Nil/zero when the caller carries no trace — the slicer
	// then starts its own when the recording has a tracer attached.
	qt    *qtrace.Trace
	qspan qtrace.SpanRef
}

// withTrace returns a shallow copy stamped with the trace, so shared
// slicers (a fixed-backend engine's) never carry per-query state.
func (s *Slicer) withTrace(qt *qtrace.Trace, parent qtrace.SpanRef) *Slicer {
	if qt == nil {
		return s
	}
	c := *s
	c.qt = qt
	c.qspan = parent
	return &c
}

// logQuery stamps the planner attribution and publishes the record.
func (s *Slicer) logQuery(qr querylog.Record) {
	qr.Plan = s.plan
	qr.PlanReason = s.planReason
	s.rec.logQuery(qr)
}

// ensureFP returns the FP graph, building it from the trace on first
// use when construction was deferred (RunOptions.DeferGraphs). A build
// failure latches: later calls return the same error without retrying.
func (r *Recording) ensureFP() (*fp.Graph, error) {
	r.buildMu.Lock()
	defer r.buildMu.Unlock()
	if r.fpG != nil {
		return r.fpG, nil
	}
	if r.fpErr != nil {
		return nil, r.fpErr
	}
	span := r.tel.StartSpan("fp-deferred-build")
	g := fp.NewGraph(r.p.ir)
	g.SetPlainLabels(r.fpPlain)
	g.SetTelemetry(r.tel)
	if err := r.replayInto(g); err != nil {
		r.fpErr = fmt.Errorf("slicer: deferred FP build: %w", err)
		span.End()
		return nil, r.fpErr
	}
	span.End()
	r.fpG = g
	return g, nil
}

// ensureOPT is ensureFP for the compacted graph.
func (r *Recording) ensureOPT() (*opt.Graph, error) {
	r.buildMu.Lock()
	defer r.buildMu.Unlock()
	if r.optG != nil {
		return r.optG, nil
	}
	if r.optErr != nil {
		return nil, r.optErr
	}
	span := r.tel.StartSpan("opt-deferred-build")
	g := opt.NewGraph(r.p.ir, r.optCfg, r.hot, r.cuts)
	g.SetTelemetry(r.tel)
	if err := r.replayInto(g); err != nil {
		r.optErr = fmt.Errorf("slicer: deferred OPT build: %w", err)
		span.End()
		return nil, r.optErr
	}
	span.End()
	r.optG = g
	return g, nil
}

// replayInto feeds the recorded trace through a sink — the deferred
// graph build path. The event stream is identical to what the builders
// would have seen online, so the graphs are identical too.
func (r *Recording) replayInto(sink trace.Sink) error {
	f, err := os.Open(r.path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.ReplayWith(r.p.ir, f, sink, trace.NewMetrics(r.tel))
}

// FP returns the full-graph slicer (building the graph on first use
// when Record deferred it).
func (r *Recording) FP() *Slicer {
	g, err := r.ensureFP()
	if err != nil {
		return &Slicer{rec: r, name: "FP", impl: unavailableSlicer{err}}
	}
	return &Slicer{rec: r, name: "FP", impl: g}
}

// OPT returns the compacted-graph slicer (the paper's algorithm),
// building the graph on first use when Record deferred it.
func (r *Recording) OPT() *Slicer {
	g, err := r.ensureOPT()
	if err != nil {
		return &Slicer{rec: r, name: "OPT", impl: unavailableSlicer{err}}
	}
	return &Slicer{rec: r, name: "OPT", impl: g}
}

// Reexec returns the re-execution slicer: queries are answered by
// resuming the interpreter from checkpoints and running the LP
// traversal over the regenerated events — no graph, no trace reads.
func (r *Recording) Reexec() *Slicer {
	if r.reexecS == nil {
		return &Slicer{rec: r, name: "reexec", impl: unavailableSlicer{errNoReexec}}
	}
	return &Slicer{rec: r, name: "reexec", impl: r.reexecS}
}

// Forward returns the forward-computed slicer (RunOptions.WithForward):
// per-address slice sets precomputed during the run, answered by
// lookup. Unavailable unless the recording was made WithForward.
func (r *Recording) Forward() *Slicer {
	if r.fwd == nil {
		return &Slicer{rec: r, name: "forward", impl: unavailableSlicer{errNoForward}}
	}
	return &Slicer{rec: r, name: "forward", impl: loopMulti{r.fwd}}
}

var (
	errNoReexec  = errors.New("slicer: re-execution backend unavailable for this recording")
	errNoForward = errors.New("slicer: forward index not built (RunOptions.WithForward was off)")
)

// loopMulti lifts a single-criterion slicer into MultiSlicer by
// looping — for backends whose per-query cost is a lookup, batching
// has nothing to share.
type loopMulti struct{ s slicing.Slicer }

func (m loopMulti) Slice(c slicing.Criterion) (*slicing.Slice, *slicing.Stats, error) {
	return m.s.Slice(c)
}

func (m loopMulti) SliceAll(cs []slicing.Criterion) ([]*slicing.Slice, *slicing.Stats, error) {
	outs := make([]*slicing.Slice, len(cs))
	agg := &slicing.Stats{}
	for i, c := range cs {
		sl, st, err := m.s.Slice(c)
		if err != nil {
			return nil, nil, err
		}
		outs[i] = sl
		if st != nil {
			agg.Instances += st.Instances
			agg.LabelProbes += st.LabelProbes
		}
	}
	return outs, agg, nil
}

// LP returns the demand-driven trace slicer. A snapshot-loaded recording
// has no trace file, so its LP slicer answers every query with an error
// (snapshots persist the graphs, not the execution trace).
func (r *Recording) LP() *Slicer {
	if r.lpS == nil {
		return &Slicer{rec: r, name: "LP", impl: unavailableSlicer{errLPSnapshot}}
	}
	return &Slicer{rec: r, name: "LP", impl: r.lpS}
}

// errLPSnapshot is returned by LP queries against snapshot-loaded
// recordings.
var errLPSnapshot = errors.New("slicer: LP is unavailable for a snapshot-loaded recording (no trace file)")

// unavailableSlicer rejects every query with a fixed error.
type unavailableSlicer struct{ err error }

func (u unavailableSlicer) Slice(slicing.Criterion) (*slicing.Slice, *slicing.Stats, error) {
	return nil, nil, u.err
}

func (u unavailableSlicer) SliceAll([]slicing.Criterion) ([]*slicing.Slice, *slicing.Stats, error) {
	return nil, nil, u.err
}

// Name reports which algorithm this slicer uses.
func (s *Slicer) Name() string { return s.name }

// queryTrace returns the active causal trace and the parent span this
// query's execution span nests under, minting a fresh trace when the
// caller carries none but the recording has a tracer attached (direct
// façade queries). The bool reports ownership: an owned trace is
// finished by this call; a stamped one belongs to the dispatching
// engine.
func (s *Slicer) queryTrace(kind string, addr int64, batch int) (*qtrace.Trace, qtrace.SpanRef, bool) {
	if s.qt != nil {
		return s.qt, s.qspan, false
	}
	if s.rec.qtr == nil {
		return nil, qtrace.SpanRef{}, false
	}
	qt := s.rec.qtr.StartQuery(kind, addr, batch)
	return qt, qt.Root(), true
}

// annotateExec attaches traversal-effort attributes — instance and
// probe counts, and for LP the trace bytes decoded — to an execution
// span.
func annotateExec(esp qtrace.SpanRef, st *slicing.Stats) {
	if st == nil {
		return
	}
	esp.Int("instances", st.Instances).Int("label_probes", st.LabelProbes)
	if st.SegScans > 0 || st.SegSkips > 0 {
		esp.Int("seg_scans", st.SegScans).Int("seg_skips", st.SegSkips).Int("seg_bytes", st.SegBytes)
	}
}

// SliceAddr slices on the last definition of the given memory address.
func (s *Slicer) SliceAddr(addr int64) (*Slice, error) {
	var id uint64
	obs := s.rec.queryObserved()
	if obs {
		id = s.rec.qlog.NextID()
	}
	qt, parent, owned := s.queryTrace(querylog.KindSlice, addr, 0)
	esp := parent.Child("exec/" + s.name)
	t0 := time.Now()
	raw, st, err := s.impl.Slice(slicing.AddrCriterion(addr))
	elapsed := time.Since(t0)
	if err != nil {
		class := querylog.Classify(err)
		esp.EndErr(class)
		if obs {
			s.logQuery(querylog.Record{
				ID: id, Start: t0, Backend: s.name, Kind: querylog.KindSlice,
				Addr: addr, Latency: elapsed, Err: class, TraceID: qt.ID(),
			})
		}
		if owned {
			qt.SetError(class)
			s.rec.finishTrace(qt)
		}
		return nil, err
	}
	if qt != nil {
		annotateExec(esp.Int("stmts", int64(raw.Len())), st)
	}
	esp.End()
	qt.SetQueryID(id)
	if reg := s.rec.tel; reg != nil {
		reg.ObserveSpan("slice/"+s.name, elapsed)
		reg.Counter("slice.queries").Inc()
		reg.Histogram("slice.size").Observe(int64(raw.Len()))
		if st != nil {
			reg.Counter("slice.instances").Add(st.Instances)
			reg.Counter("slice.label_probes").Add(st.LabelProbes)
		}
	}
	sl := &Slice{
		Lines:   raw.Lines(s.rec.p.ir),
		Stmts:   raw.Len(),
		Time:    elapsed,
		QueryID: id,
		TraceID: qt.ID(),
		raw:     raw,
	}
	if obs {
		qr := querylog.Record{
			ID: id, Start: t0, Backend: s.name, Kind: querylog.KindSlice,
			Addr: addr, Latency: elapsed, Stmts: sl.Stmts, Lines: len(sl.Lines),
			TraceID: qt.ID(),
		}
		if st != nil {
			qr.Instances = st.Instances
			qr.LabelProbes = st.LabelProbes
		}
		s.logQuery(qr)
	}
	if owned {
		qt.SetBackend(s.name)
		s.rec.finishTrace(qt)
	}
	return sl, nil
}

// SliceAddrs answers a batch of address criteria in one shared backward
// traversal (slicing.MultiSlicer): results are identical to calling
// SliceAddr per address, but visited state, label resolution, and — for
// LP — trace segment scans are shared across the whole batch.
func (s *Slicer) SliceAddrs(addrs []int64) ([]*Slice, error) {
	if len(addrs) == 0 {
		return nil, nil
	}
	cs := make([]slicing.Criterion, len(addrs))
	for i, a := range addrs {
		cs[i] = slicing.AddrCriterion(a)
	}
	obs := s.rec.queryObserved()
	qt, parent, owned := s.queryTrace(querylog.KindBatch, addrs[0], len(addrs))
	esp := parent.Child("exec/" + s.name)
	t0 := time.Now()
	raws, st, err := s.impl.SliceAll(cs)
	elapsed := time.Since(t0)
	if err != nil {
		class := querylog.Classify(err)
		esp.EndErr(class)
		if obs {
			s.logQuery(querylog.Record{
				ID: s.rec.qlog.NextID(), Start: t0, Backend: s.name,
				Kind: querylog.KindBatch, Addr: addrs[0], Batch: len(addrs),
				Latency: elapsed, Err: class, TraceID: qt.ID(),
			})
		}
		if owned {
			qt.SetError(class)
			s.rec.finishTrace(qt)
		}
		return nil, err
	}
	if qt != nil {
		annotateExec(esp.Int("criteria", int64(len(addrs))), st)
	}
	esp.End()
	if reg := s.rec.tel; reg != nil {
		reg.ObserveSpan("slice/"+s.name, elapsed)
		reg.Counter("slice.queries").Add(int64(len(addrs)))
		if st != nil {
			reg.Counter("slice.instances").Add(st.Instances)
			reg.Counter("slice.label_probes").Add(st.LabelProbes)
		}
	}
	outs := make([]*Slice, len(raws))
	for i, raw := range raws {
		if reg := s.rec.tel; reg != nil {
			reg.Histogram("slice.size").Observe(int64(raw.Len()))
		}
		var id uint64
		if obs {
			id = s.rec.qlog.NextID()
		}
		outs[i] = &Slice{
			Lines:   raw.Lines(s.rec.p.ir),
			Stmts:   raw.Len(),
			Time:    elapsed / time.Duration(len(raws)),
			QueryID: id,
			TraceID: qt.ID(),
			raw:     raw,
		}
		if obs {
			// One audit record per criterion; the batch's wall time is
			// shared evenly, and the batch-aggregate traversal stats ride
			// on the first record. All records of one batch share the
			// batch's causal trace.
			qr := querylog.Record{
				ID: id, Start: t0, Backend: s.name, Kind: querylog.KindBatch,
				Addr: addrs[i], Batch: len(addrs), Latency: outs[i].Time,
				Stmts: outs[i].Stmts, Lines: len(outs[i].Lines),
				TraceID: qt.ID(),
			}
			if i == 0 && st != nil {
				qr.Instances = st.Instances
				qr.LabelProbes = st.LabelProbes
			}
			if i == 0 {
				qt.SetQueryID(id)
			}
			s.logQuery(qr)
		}
	}
	if owned {
		qt.SetBackend(s.name)
		s.rec.finishTrace(qt)
	}
	return outs, nil
}

// SliceVar slices on the last definition of a global scalar variable.
func (s *Slicer) SliceVar(name string) (*Slice, error) {
	addr, err := s.rec.p.GlobalAddr(name)
	if err != nil {
		return nil, err
	}
	return s.SliceAddr(addr)
}

// GlobalAddr returns the address of a global scalar (or the first element
// of a global array).
func (p *Program) GlobalAddr(name string) (int64, error) {
	for _, o := range p.ir.Globals {
		if o.Name == name {
			return interp.GlobalBase + o.Off, nil
		}
	}
	return 0, fmt.Errorf("slicer: no global named %q", name)
}

// GraphStats summarizes the two in-memory dependence graphs, mirroring the
// quantities the paper's tables report.
type GraphStats struct {
	FPLabelPairs  int64
	OPTLabelPairs int64
	FPSizeBytes   int64
	OPTSizeBytes  int64
	StaticEdges   int64
	PathNodes     int
}

// Stats returns graph statistics for this recording, building deferred
// graphs if necessary (zero stats when a deferred build fails).
func (r *Recording) Stats() GraphStats {
	fpG, err1 := r.ensureFP()
	optG, err2 := r.ensureOPT()
	if err1 != nil || err2 != nil {
		return GraphStats{}
	}
	return GraphStats{
		FPLabelPairs:  fpG.LabelPairs(),
		OPTLabelPairs: optG.LabelPairs(),
		FPSizeBytes:   fpG.SizeBytes(),
		OPTSizeBytes:  optG.SizeBytes(),
		StaticEdges:   optG.StaticEdges(),
		PathNodes:     optG.PathNodes(),
	}
}

// Planner returns the recording's cost-based query planner (always
// non-nil after Record).
func (r *Recording) Planner() *plan.Planner { return r.planner }

// PlanFor returns the planner's decision for one query shape against
// the recording's current backend availability and live workload
// statistics. Purely informational: it changes no state.
func (r *Recording) PlanFor(shape plan.Shape) plan.Decision {
	return r.planner.Decide(shape, r.availability(), r.qstats.Snapshot())
}

// availability reports which backends can answer right now and which
// graphs are already built.
func (r *Recording) availability() plan.Availability {
	r.buildMu.Lock()
	fpWarm, optWarm := r.fpG != nil, r.optG != nil
	fpErr, optErr := r.fpErr, r.optErr
	r.buildMu.Unlock()
	return plan.Availability{
		FP:      (fpWarm || r.path != "") && fpErr == nil,
		OPT:     (optWarm || r.path != "") && optErr == nil,
		LP:      r.lpS != nil,
		Reexec:  r.reexecS != nil,
		Forward: r.fwd != nil,
		FPWarm:  fpWarm,
		OPTWarm: optWarm,
	}
}

// backendSlicer maps a planner backend name to this recording's slicer
// for it (nil for unknown names).
func (r *Recording) backendSlicer(name string) *Slicer {
	switch name {
	case plan.FP:
		return r.FP()
	case plan.OPT:
		return r.OPT()
	case plan.LP:
		return r.LP()
	case plan.Reexec:
		return r.Reexec()
	case plan.Forward:
		return r.Forward()
	}
	return nil
}
