// Command fuzzgen soaks the slicing stack with generated MiniC programs:
// each seed becomes a random program that is run once under
// instrumentation and sliced through the full configuration matrix, with
// every answer compared against the brute-force oracle.
//
// Usage:
//
//	fuzzgen [-seed 1] [-n 500] [-matrix full|quick] [-criteria 8]
//	        [-witness] [-keep-going] [-out dir] [-metrics out.json]
//	        [-v] [-dump]
//
// -witness additionally reruns each criterion as an observed query on
// the OPT resident/hybrid variants and validates every hop of every
// slice member's dependence-path witness against the oracle's exercised
// dependence pairs (docs/EXPLAIN.md) — catching a wrong inferred edge
// even when the slice sets agree. -metrics writes a telemetry snapshot
// of the campaign (per-seed check spans, subject/criteria counters) on
// exit.
//
// Seeds base..base+n-1 are checked in order; progress and the exact
// replay command for the current seed are printed as the run advances.
// On a divergence the failing program is minimized (while preserving the
// divergence) and written as a standalone .minic repro with the failing
// configuration tuple in its header — ready to check into
// internal/fuzzgen/testdata/regressions/ once the bug is fixed.
//
//	fuzzgen -seed 42 -n 1        # replay one seed exactly
//	fuzzgen -seed 42 -dump       # print the generated program + input
//
// Exit status: 0 when every seed is clean, 1 when any diverged.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dynslice/internal/fuzzgen"
	"dynslice/internal/telemetry"
)

func main() {
	seed := flag.Uint64("seed", 1, "first generator seed")
	n := flag.Uint64("n", 500, "number of seeds to check")
	matrix := flag.String("matrix", "full", "configuration matrix: full or quick")
	criteria := flag.Int("criteria", 8, "slicing criteria sampled per program")
	witness := flag.Bool("witness", false, "validate dependence-path witnesses on OPT variants against the oracle's exercised dependences")
	keepGoing := flag.Bool("keep-going", false, "check every seed even after divergences")
	outDir := flag.String("out", ".", "directory for minimized .minic repros")
	metricsOut := flag.String("metrics", "", "write a telemetry JSON snapshot of the campaign to this file on exit")
	verbose := flag.Bool("v", false, "print every seed, not just a progress line")
	dump := flag.Bool("dump", false, "print the generated program for -seed and exit")
	flag.Parse()

	if *dump {
		pr := fuzzgen.Generate(*seed)
		fmt.Printf("// seed %d, input:", *seed)
		for _, v := range pr.Input {
			fmt.Printf(" %d", v)
		}
		fmt.Printf("\n%s", pr.Src)
		return
	}

	var variants []fuzzgen.Variant
	switch *matrix {
	case "full":
		variants = fuzzgen.FullMatrix()
	case "quick":
		variants = fuzzgen.QuickMatrix()
	default:
		fmt.Fprintf(os.Stderr, "fuzzgen: unknown matrix %q (want full or quick)\n", *matrix)
		os.Exit(2)
	}
	opts := fuzzgen.Options{Criteria: *criteria, Variants: variants, Witness: *witness}

	var reg *telemetry.Registry
	if *metricsOut != "" {
		reg = telemetry.New()
		exit = func(code int) {
			if err := reg.WriteFile(*metricsOut); err != nil {
				fmt.Fprintln(os.Stderr, "fuzzgen: metrics:", err)
			}
			os.Exit(code)
		}
	}

	checked, skipped, failures := 0, 0, 0
	var stmts, crits int
	for i := uint64(0); i < *n; i++ {
		s := *seed + i
		pr := fuzzgen.Generate(s)
		if *verbose {
			fmt.Printf("seed %d: %d bytes, %d inputs\n", s, len(pr.Src), len(pr.Input))
		}
		t0 := time.Now()
		res, err := fuzzgen.Check(pr.Src, pr.Input, opts)
		reg.ObserveSpan("fuzz/check", time.Since(t0))
		if err != nil {
			if fuzzgen.IsSubjectError(err) {
				// Step-budget blowups are the only legitimate reason a
				// generated program is not a differential subject.
				if strings.Contains(err.Error(), "step limit") {
					skipped++
					reg.Counter("fuzz.seeds.skipped").Inc()
					continue
				}
				fmt.Fprintf(os.Stderr, "seed %d: generator produced an invalid program: %v\n%s", s, err, pr.Src)
				exit(1)
			}
			fmt.Fprintf(os.Stderr, "seed %d: harness failure: %v\n", s, err)
			exit(1)
		}
		checked++
		stmts += res.Stmts
		crits += res.Criteria
		reg.Counter("fuzz.seeds.checked").Inc()
		reg.Counter("fuzz.stmts").Add(int64(res.Stmts))
		reg.Counter("fuzz.criteria").Add(int64(res.Criteria))
		if len(res.Divergences) == 0 {
			if (i+1)%100 == 0 {
				fmt.Printf("%d/%d seeds clean (%d stmts executed, %d criteria checked, %d step-limit skips)\n",
					checked, *n, stmts, crits, skipped)
			}
			continue
		}

		failures++
		reg.Counter("fuzz.divergences").Add(int64(len(res.Divergences)))
		fmt.Fprintf(os.Stderr, "seed %d DIVERGED (replay: go run ./cmd/fuzzgen -seed %d -n 1 -matrix %s -criteria %d)\n",
			s, s, *matrix, *criteria)
		for _, d := range res.Divergences {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
		path, err := writeRepro(*outDir, s, pr, res, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: writing repro: %v\n", s, err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "  minimized repro: %s\n", path)
		if !*keepGoing {
			exit(1)
		}
	}
	fmt.Printf("%d/%d seeds clean, %d step-limit skips, %d divergent (%d stmts executed, %d criteria checked)\n",
		checked-failures, *n, skipped, failures, stmts, crits)
	if failures > 0 {
		exit(1)
	}
	exit(0)
}

// exit routes every termination through one hook so -metrics can flush
// its snapshot first (os.Exit skips defers).
var exit = os.Exit

// writeRepro minimizes the divergent program (preserving the divergence)
// and writes it as a standalone .minic file with the failing variants in
// its header.
func writeRepro(dir string, seed uint64, pr *fuzzgen.Prog, res *fuzzgen.Result, opts fuzzgen.Options) (string, error) {
	diverges := func(src string, input []int64) bool {
		r, err := fuzzgen.Check(src, input, opts)
		return err == nil && len(r.Divergences) > 0
	}
	src, input := fuzzgen.Shrink(pr.Src, pr.Input, diverges)

	seen := map[string]bool{}
	var hdr strings.Builder
	fmt.Fprintf(&hdr, "// Minimized from generator seed %d. Divergent configurations:\n", seed)
	for _, d := range res.Divergences {
		if !seen[d.Variant] {
			seen[d.Variant] = true
			fmt.Fprintf(&hdr, "//   %s\n", d.Variant)
		}
	}
	hdr.WriteString("// input:")
	for _, v := range input {
		fmt.Fprintf(&hdr, " %d", v)
	}
	hdr.WriteString("\n")

	path := filepath.Join(dir, fmt.Sprintf("divergence_seed%d.minic", seed))
	return path, os.WriteFile(path, []byte(hdr.String()+src), 0o644)
}
