// Command lintmetrics is the metric-name drift gate behind
// `make lint-metrics`: every telemetry counter, gauge, and histogram
// the library registers must be documented in docs/OBSERVABILITY.md's
// "## Metric names" section, and every name that section documents must
// still be registered somewhere in the code. Documentation that lists
// metrics nobody emits — or omits metrics operators will see on
// /debug/metrics — is worse than none, and nothing else keeps the two
// surfaces honest as counters are added and renamed.
//
// Code side. The tool scans non-test .go files in the root package and
// under internal/ (cmd/ tools carry private metrics like fuzz.* that
// are not part of the library's observability surface) for
//
//	reg.Counter("interp.runs")               a literal name
//	reg.Counter("snapshot.read.err." + f(x)) a dynamic suffix: treated
//	                                         as the wildcard family
//	                                         snapshot.read.err.*
//	reg.Counter(ns + ".seg_scans")           a namespaced registration:
//	                                         expanded with every
//	                                         namespace passed to a
//	                                         SetTelemetryNamed call
//	                                         ("lp", "reexec")
//
// Doc side. Only the "## Metric names" section is parsed (up to the
// next ## heading). Backticked tokens shaped like metric names count;
// shorthand continuation cells (`trace.write.blocks` / `.stmts`)
// inherit the preceding name's prefix, and `<class>`-style tails
// (`snapshot.read.err.<class>`) declare a documented wildcard family.
// Tokens with uppercase letters, slashes, or `*` (package paths,
// identifiers, family headers like `interp.*`) are ignored.
//
// Exit status 1 on any drift, with one line per undocumented or stale
// name.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

var (
	reLiteral   = regexp.MustCompile(`\.(?:Counter|Gauge|Histogram)\("([a-z0-9_.]+)"\)`)
	reDynPrefix = regexp.MustCompile(`\.(?:Counter|Gauge|Histogram)\("([a-z0-9_.]+\.)" ?\+`)
	reNsSuffix  = regexp.MustCompile(`\.(?:Counter|Gauge|Histogram)\([A-Za-z_][A-Za-z0-9_]* ?\+ ?"(\.[a-z0-9_.]+)"\)`)
	reNamespace = regexp.MustCompile(`SetTelemetryNamed\([^,]+, "([a-z0-9_]+)"\)`)

	reBacktick = regexp.MustCompile("`([^`]+)`")
	// A full metric name: lowercase dotted path, at least two segments.
	reDocName = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)
	// A continuation cell: `.stmts`, `.bytes.resident` — completes the
	// preceding full name.
	reDocSuffix = regexp.MustCompile(`^(\.[a-z0-9_]+)+$`)
	// A wildcard family: `snapshot.read.err.<class>`.
	reDocWild = regexp.MustCompile(`^([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)*\.)<[a-z_]+>$`)
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	codeNames, codeWilds, err := scanCode(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintmetrics:", err)
		os.Exit(2)
	}
	docPath := filepath.Join(root, "docs", "OBSERVABILITY.md")
	docNames, docWilds, err := scanDocs(docPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintmetrics:", err)
		os.Exit(2)
	}
	if len(codeNames) == 0 || len(docNames) == 0 {
		fmt.Fprintf(os.Stderr, "lintmetrics: suspicious inventory (code %d, docs %d) — parser drift?\n",
			len(codeNames), len(docNames))
		os.Exit(2)
	}

	var drift []string
	for name, at := range codeNames {
		if _, ok := docNames[name]; ok || matchesWild(name, docWilds) {
			continue
		}
		drift = append(drift, fmt.Sprintf("undocumented: %-32s registered at %s, missing from %s", name, at, docPath))
	}
	for prefix, at := range codeWilds {
		if _, ok := docWilds[prefix]; !ok {
			drift = append(drift, fmt.Sprintf("undocumented: %-32s dynamic family at %s has no `%s<...>` doc entry", prefix+"*", at, prefix))
		}
	}
	for name, line := range docNames {
		if _, ok := codeNames[name]; ok || matchesWild(name, codeWilds) {
			continue
		}
		drift = append(drift, fmt.Sprintf("stale doc:    %-32s %s:%d documents a name no code registers", name, docPath, line))
	}
	for prefix, line := range docWilds {
		if _, ok := codeWilds[prefix]; ok {
			continue
		}
		if !anyWithPrefix(codeNames, prefix) {
			drift = append(drift, fmt.Sprintf("stale doc:    %-32s %s:%d documents a family no code registers", prefix+"*", docPath, line))
		}
	}
	if len(drift) > 0 {
		sort.Strings(drift)
		for _, d := range drift {
			fmt.Println(d)
		}
		fmt.Printf("lintmetrics: %d name(s) drifted between code and %s\n", len(drift), docPath)
		os.Exit(1)
	}
	fmt.Printf("lintmetrics: %d metric names + %d dynamic families in sync with %s\n",
		len(codeNames), len(codeWilds), docPath)
}

// scanCode walks the library sources and returns literal metric names
// and dynamic-prefix families, each mapped to "file:line" of one
// registration site.
func scanCode(root string) (names, wilds map[string]string, err error) {
	names, wilds = map[string]string{}, map[string]string{}
	var files []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		if d.IsDir() {
			top := strings.SplitN(rel, string(filepath.Separator), 2)[0]
			switch top {
			case "cmd", "docs", "bench", "testdata", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	// First pass: collect the namespaces SetTelemetryNamed is invoked
	// with, so ns+".suffix" registrations can be expanded per caller.
	var namespaces []string
	srcs := make(map[string]string, len(files))
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, nil, err
		}
		srcs[f] = string(data)
		for _, m := range reNamespace.FindAllStringSubmatch(srcs[f], -1) {
			namespaces = append(namespaces, m[1])
		}
	}
	if len(namespaces) == 0 {
		namespaces = []string{"lp"} // the in-package default
	}

	for _, f := range files {
		rel, _ := filepath.Rel(root, f)
		for i, line := range strings.Split(srcs[f], "\n") {
			at := fmt.Sprintf("%s:%d", rel, i+1)
			for _, m := range reLiteral.FindAllStringSubmatch(line, -1) {
				names[m[1]] = at
			}
			for _, m := range reDynPrefix.FindAllStringSubmatch(line, -1) {
				wilds[m[1]] = at
			}
			for _, m := range reNsSuffix.FindAllStringSubmatch(line, -1) {
				for _, ns := range namespaces {
					names[ns+m[1]] = at
				}
			}
		}
	}
	return names, wilds, nil
}

// scanDocs parses the "## Metric names" section, returning documented
// literal names and wildcard-family prefixes mapped to their line
// number.
func scanDocs(path string) (names map[string]int, wilds map[string]int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	names, wilds = map[string]int{}, map[string]int{}
	in := false
	for i, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.HasPrefix(line, "## Metric names"):
			in = true
			continue
		case in && strings.HasPrefix(line, "## "):
			in = false
		}
		if !in {
			continue
		}
		last := "" // preceding full name, for `.suffix` continuations
		for _, m := range reBacktick.FindAllStringSubmatch(line, -1) {
			tok := m[1]
			switch {
			case reDocName.MatchString(tok):
				names[tok] = i + 1
				last = tok
			case reDocSuffix.MatchString(tok) && last != "":
				full := last[:strings.LastIndex(last, ".")] + tok
				names[full] = i + 1
				last = full
			case reDocWild.MatchString(tok):
				wilds[reDocWild.FindStringSubmatch(tok)[1]] = i + 1
			}
		}
	}
	return names, wilds, nil
}

func matchesWild[V any](name string, wilds map[string]V) bool {
	for prefix := range wilds {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func anyWithPrefix[V any](names map[string]V, prefix string) bool {
	for n := range names {
		if strings.HasPrefix(n, prefix) {
			return true
		}
	}
	return false
}
