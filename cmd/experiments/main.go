// Command experiments regenerates the paper's evaluation (§4): every
// table and figure, on the ten synthetic stand-ins for SPECInt2000/95.
//
// Usage:
//
//	experiments [-exp all|1|2|3|4|5|6|7|8|15|16|17|18|sequitur|telemetry|parallel|memory|explain|queries|snapshot|planner|qtrace] [-workload name] [-scale n]
//	            [-telemetry-out BENCH_telemetry.json] [-parallel-out BENCH_parallel.json]
//	            [-memory-out BENCH_memory.json] [-explain-out BENCH_explain.json]
//	            [-queries-out BENCH_queries.json] [-snapshot-out BENCH_snapshot.json]
//	            [-planner-out BENCH_planner.json] [-qtrace-out BENCH_qtrace.json]
//
// Numbers 1-8 are tables, 15-18 figures, matching the paper's numbering.
// -scale multiplies each workload's default input size. The telemetry
// experiment builds every workload with metrics attached and writes
// per-benchmark graph sizes, per-optimization label-elimination counts,
// and slice times to -telemetry-out. The parallel experiment compares the
// pipelined build and the batched/concurrent 25-criteria query paths
// against their sequential GOMAXPROCS=1 baselines and writes per-workload
// speedups to -parallel-out (see docs/PERFORMANCE.md). The memory
// experiment builds each workload's FP and OPT graphs under both label
// layouts (flat -compact=false pairs vs delta-varint blocks), checks the
// slices agree, and writes resident-bytes comparisons to -memory-out.
// The explain experiment runs every criterion as an observed query on
// FP, OPT, and LP, and writes the aggregate explicit-vs-inferred edge
// resolution breakdown (the measurable counterpart of the paper's
// Table 4 label-elimination accounting; see docs/EXPLAIN.md) to
// -explain-out. The queries experiment replays the interactive usage
// pattern (batched criteria, repeat cached queries, observed queries)
// through each backend's QueryEngine with the query flight recorder
// attached, validates every audit record, and writes per-workload
// latency quantiles and cache statistics to -queries-out (see
// docs/OBSERVABILITY.md). The planner experiment measures the
// re-execution backend's rare-query path against the cheapest
// graph-build path and the cost-based planner's regret on a criterion
// stream, writing both to -planner-out (see docs/PLANNER.md). The
// qtrace experiment replays the same interactive pattern with the
// per-query causal tracer attached, checks the tail-based sampler
// retained exactly the deterministic 1-in-N prediction with well-formed
// span trees, and writes capture rates and the traced-vs-plain overhead
// ratio to -qtrace-out (see docs/OBSERVABILITY.md "Per-query tracing").
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dynslice/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, 1-8 (tables), 15-18 (figures), sequitur, ablation, forward, telemetry, parallel, memory, explain, queries, snapshot, planner, qtrace")
	workload := flag.String("workload", "", "restrict to one workload (e.g. 164.gzip or gzip)")
	scale := flag.Int64("scale", 1, "input-size multiplier for every workload")
	telemetryOut := flag.String("telemetry-out", "BENCH_telemetry.json", "output file for -exp telemetry")
	parallelOut := flag.String("parallel-out", "BENCH_parallel.json", "output file for -exp parallel")
	memoryOut := flag.String("memory-out", "BENCH_memory.json", "output file for -exp memory")
	explainOut := flag.String("explain-out", "BENCH_explain.json", "output file for -exp explain")
	queriesOut := flag.String("queries-out", "BENCH_queries.json", "output file for -exp queries")
	snapshotOut := flag.String("snapshot-out", "BENCH_snapshot.json", "output file for -exp snapshot")
	plannerOut := flag.String("planner-out", "BENCH_planner.json", "output file for -exp planner")
	qtraceOut := flag.String("qtrace-out", "BENCH_qtrace.json", "output file for -exp qtrace")
	flag.Parse()

	wls := bench.Workloads()
	if *workload != "" {
		w, ok := bench.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
			os.Exit(2)
		}
		wls = []bench.Workload{w}
	}
	if *scale > 1 {
		for i := range wls {
			wls[i].Input = append([]int64{defaultSize(wls[i].Name) * *scale}, wls[i].Input...)
		}
	}

	w := os.Stdout
	run := func(name string, f func() error) {
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}
	sel := strings.Split(*exp, ",")
	want := func(k string) bool {
		for _, s := range sel {
			if s == "all" || s == k {
				return true
			}
		}
		return false
	}
	if want("1") {
		run("table1", func() error { return bench.RunTable1(w, wls) })
	}
	if want("2") {
		run("table2", func() error { return bench.RunTable2(w, wls) })
	}
	if want("15") {
		run("fig15", func() error { return bench.RunFig15(w, wls) })
	}
	if want("16") {
		run("fig16", func() error { return bench.RunFig16(w, wls) })
	}
	if want("17") {
		run("fig17", func() error { return bench.RunFig17(w, wls, 4) })
	}
	if want("3") {
		run("table3", func() error { return bench.RunTable3(w, wls) })
	}
	if want("4") {
		run("table4", func() error { return bench.RunTable4(w, wls) })
	}
	if want("18") {
		run("fig18", func() error { return bench.RunFig18(w, wls, 25) })
	}
	if want("5") {
		run("table5", func() error { return bench.RunTable5(w, wls) })
	}
	if want("6") {
		run("table6", func() error { return bench.RunTable6(w, wls) })
	}
	if want("7") {
		run("table7", func() error { return bench.RunTable7(w, wls) })
	}
	if want("8") {
		run("table8", func() error { return bench.RunTable8(w, wls) })
	}
	if want("sequitur") {
		run("sequitur", func() error { return bench.RunSequitur(w, wls) })
	}
	if want("ablation") {
		run("ablation-solo", func() error { return bench.RunAblationSolo(w, wls) })
		run("ablation-paths", func() error { return bench.RunAblationPathThreshold(w, wls) })
		run("ablation-hybrid", func() error { return bench.RunAblationHybrid(w, wls) })
	}
	if want("forward") {
		run("forward", func() error { return bench.RunForwardComparison(w, wls) })
	}
	if want("telemetry") {
		run("telemetry", func() error { return bench.RunTelemetry(w, wls, *telemetryOut) })
	}
	if want("parallel") {
		run("parallel", func() error { return bench.RunParallel(w, wls, *parallelOut) })
	}
	if want("memory") {
		run("memory", func() error { return bench.RunMemory(w, wls, *memoryOut) })
	}
	if want("explain") {
		run("explain", func() error { return bench.RunExplain(w, wls, *explainOut) })
	}
	if want("queries") {
		run("queries", func() error { return bench.RunQueries(w, wls, *queriesOut) })
	}
	if want("snapshot") {
		run("snapshot", func() error { return bench.RunSnapshot(w, wls, *snapshotOut) })
	}
	if want("planner") {
		run("planner", func() error { return bench.RunPlanner(w, wls, *plannerOut) })
	}
	if want("qtrace") {
		run("qtrace", func() error { return bench.RunQtrace(w, wls, *qtraceOut) })
	}
}

// defaultSize mirrors each workload's built-in default input value so
// -scale can multiply it.
func defaultSize(name string) int64 {
	switch {
	case strings.Contains(name, "gzip"):
		return 900
	case strings.Contains(name, "bzip2"):
		return 2600
	case strings.Contains(name, "vortex"):
		return 2200
	case strings.Contains(name, "parser"):
		return 260
	case strings.Contains(name, "mcf"):
		return 1400
	case strings.Contains(name, "twolf"):
		return 210
	case strings.Contains(name, "perl"):
		return 1700
	case strings.Contains(name, "li"):
		return 55
	case strings.Contains(name, "gcc"):
		return 30
	case strings.Contains(name, "go"):
		return 120
	}
	return 0
}
