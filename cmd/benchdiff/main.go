// Command benchdiff compares the current benchmark JSON artifacts
// against checked-in baselines and fails on regressions — the CI gate
// behind `make bench-check`.
//
// Usage:
//
//	benchdiff [-baseline bench/baselines] [-current .] [-tolerance 0.20]
//
// Both directories are expected to hold the BENCH_*.json files written
// by cmd/experiments. For every workload present in BOTH the baseline
// and the current artifact, benchdiff compares the key metrics:
//
//	BENCH_parallel.json   lp_batch_speedup, opt_batch_speedup,
//	                      build_speedup                        (higher is better)
//	BENCH_memory.json     fp/opt compact_resident_bytes        (lower is better)
//	BENCH_telemetry.json  slice_avg_ms.{FP,OPT,LP}             (lower is better)
//	BENCH_snapshot.json   snapshot_load_speedup                (higher is better)
//	                      file_bytes                           (lower is better)
//	BENCH_planner.json    reexec_vs_build_speedup              (higher is better)
//	                      planner_regret                       (lower is better)
//	BENCH_queries.json    cache_hit_rate                       (higher is better)
//	                      stats.backends.{OPT,LP}.p99_ms       (lower is better)
//	BENCH_explain.json    opt.inferred_pct                     (higher is better)
//	                      opt/lp slice_ms                      (lower is better)
//	BENCH_qtrace.json     retained_rate (deterministic sampler) (lower is better)
//	                      traced_overhead_ratio                (lower is better)
//
// BENCH_parallel.json carries one row per (workload, GOMAXPROCS)
// setting; rows are keyed "name@pN" so every setting is gated
// independently — a speedup that holds at GOMAXPROCS=1 but collapses at
// 4 is a regression of the parallel path even though the workload's
// other row looks fine.
//
// A metric family (one spec, all workloads) regresses when the MEDIAN
// of its per-workload deltas moves in the bad direction by more than
// its allowance: -tolerance (a ratio; 0.20 means 20%) scaled by the
// metric's noise factor — 1x for deterministic byte counts, 1.5x for
// speedup ratios, 2.5x for raw wall times. Gating the median rather
// than individual workloads is what makes timing metrics usable at
// all: single-workload wall times flap 50%+ run-to-run on a loaded
// machine, but that noise is uncorrelated across the ten workloads,
// while a real regression shifts all of them. Per-workload rows are
// still printed for inspection. Baselines are machine-dependent and
// should be regenerated on the machine that runs the gate
// (`make bench-baseline`). Missing files or workloads are reported and
// skipped, not failed: a partial run gates what it can.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// metricSpec names one guarded metric: a dot path into each workload's
// JSON object, the direction in which change is a regression, and a
// noise factor scaling the base tolerance (timing metrics flap more
// than byte counts).
type metricSpec struct {
	path         string // e.g. "fp.compact_resident_bytes" or "slice_avg_ms.FP"
	higherBetter bool
	noise        float64 // tolerance multiplier; 0 means 1
}

var specs = map[string][]metricSpec{
	"BENCH_parallel.json": {
		{path: "lp_batch_speedup", higherBetter: true, noise: 1.5},
		{path: "opt_batch_speedup", higherBetter: true, noise: 1.5},
		{path: "build_speedup", higherBetter: true, noise: 1.5},
	},
	"BENCH_memory.json": {
		{path: "fp.compact_resident_bytes"},
		{path: "opt.compact_resident_bytes"},
	},
	"BENCH_telemetry.json": {
		{path: "slice_avg_ms.FP", noise: 2.5},
		{path: "slice_avg_ms.OPT", noise: 2.5},
		{path: "slice_avg_ms.LP", noise: 2.5},
	},
	"BENCH_snapshot.json": {
		{path: "snapshot_load_speedup", higherBetter: true, noise: 1.5},
		{path: "file_bytes"},
	},
	"BENCH_planner.json": {
		{path: "reexec_vs_build_speedup", higherBetter: true, noise: 1.5},
		{path: "planner_regret", noise: 1.5},
	},
	"BENCH_queries.json": {
		{path: "cache_hit_rate", higherBetter: true},
		{path: "stats.backends.OPT.p99_ms", noise: 2.5},
		{path: "stats.backends.LP.p99_ms", noise: 2.5},
	},
	"BENCH_explain.json": {
		{path: "opt.inferred_pct", higherBetter: true},
		{path: "opt.slice_ms", noise: 2.5},
		{path: "lp.slice_ms", noise: 2.5},
	},
	"BENCH_qtrace.json": {
		// The bench's retention policy is the deterministic sampler
		// alone, so retained_rate is noise-free: any drift means the
		// tail-sampling decision changed.
		{path: "retained_rate"},
		{path: "traced_overhead_ratio", noise: 2.5},
	},
}

// fileOrder keeps the report deterministic (map iteration is not).
var fileOrder = []string{"BENCH_parallel.json", "BENCH_memory.json", "BENCH_telemetry.json", "BENCH_snapshot.json", "BENCH_planner.json", "BENCH_queries.json", "BENCH_explain.json", "BENCH_qtrace.json"}

func main() {
	baselineDir := flag.String("baseline", "bench/baselines", "directory with baseline BENCH_*.json files")
	currentDir := flag.String("current", ".", "directory with freshly generated BENCH_*.json files")
	tolerance := flag.Float64("tolerance", 0.20, "allowed regression ratio before failing (0.20 = 20%)")
	flag.Parse()

	var regressions, compared int
	for _, file := range fileOrder {
		base, ok := loadBench(filepath.Join(*baselineDir, file))
		if !ok {
			fmt.Printf("skip %s: no baseline\n", file)
			continue
		}
		cur, ok := loadBench(filepath.Join(*currentDir, file))
		if !ok {
			fmt.Printf("skip %s: no current artifact\n", file)
			continue
		}
		fmt.Printf("%s (tolerance %.0f%%)\n", file, *tolerance*100)
		fmt.Printf("  %-12s %-28s %14s %14s %8s\n", "workload", "metric", "baseline", "current", "delta")
		badDeltas := make(map[string][]float64) // spec path -> per-workload bad-direction deltas
		for _, name := range sortedNames(base) {
			bw, cw := base[name], cur[name]
			if cw == nil {
				fmt.Printf("  %-12s missing from current artifact — skipped\n", name)
				continue
			}
			for _, spec := range specs[file] {
				bv, bok := lookup(bw, spec.path)
				cv, cok := lookup(cw, spec.path)
				if !bok || !cok {
					continue
				}
				delta := ratioDelta(bv, cv)
				bad := delta
				if spec.higherBetter {
					bad = -delta
				}
				badDeltas[spec.path] = append(badDeltas[spec.path], bad)
				fmt.Printf("  %-12s %-28s %14.3f %14.3f %+7.1f%%\n",
					name, spec.path, bv, cv, delta*100)
			}
		}
		for _, spec := range specs[file] {
			bads := badDeltas[spec.path]
			if len(bads) == 0 {
				continue
			}
			compared++
			med := median(bads)
			allow := *tolerance
			if spec.noise > 0 {
				allow *= spec.noise
			}
			sign := 1.0
			if spec.higherBetter {
				sign = -1 // report in the metric's own direction
			}
			status := ""
			if med > allow {
				status = "  <-- REGRESSION"
				regressions++
			}
			fmt.Printf("  median over %d workloads: %-28s %+7.1f%% (allow %.0f%%)%s\n",
				len(bads), spec.path, sign*med*100, allow*100, status)
		}
	}
	if compared == 0 {
		fmt.Println("benchdiff: nothing compared — generate baselines with `make bench-baseline`")
		return
	}
	if regressions > 0 {
		fmt.Printf("\nbenchdiff: %d metric famil(ies) regressed beyond %.0f%%\n", regressions, *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("\nbenchdiff: %d metric families within tolerance\n", compared)
}

// loadBench reads one BENCH_*.json artifact (an array of per-workload
// objects with a "name" field) into a keyed map. Artifacts with several
// rows per workload (the parallel sweep) append a "@pN" GOMAXPROCS
// discriminator so every row gates independently.
func loadBench(path string) (map[string]map[string]any, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var arr []map[string]any
	if err := json.Unmarshal(data, &arr); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", path, err)
		return nil, false
	}
	out := make(map[string]map[string]any, len(arr))
	for _, w := range arr {
		name, ok := w["name"].(string)
		if !ok {
			continue
		}
		if p, ok := w["gomaxprocs"].(float64); ok {
			name = fmt.Sprintf("%s@p%.0f", name, p)
		}
		out[name] = w
	}
	return out, len(out) > 0
}

// lookup resolves a dot path ("fp.compact_resident_bytes") to a number.
func lookup(obj map[string]any, path string) (float64, bool) {
	parts := strings.Split(path, ".")
	for _, p := range parts[:len(parts)-1] {
		sub, ok := obj[p].(map[string]any)
		if !ok {
			return 0, false
		}
		obj = sub
	}
	v, ok := obj[parts[len(parts)-1]].(float64)
	return v, ok
}

// ratioDelta is the relative change from base to cur; +0.25 means cur
// is 25% larger.
func ratioDelta(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return 1
	}
	return (cur - base) / base
}

// median of a non-empty slice (sorts a copy; even length averages the
// two middle values).
func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func sortedNames(m map[string]map[string]any) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
