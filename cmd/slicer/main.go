// Command slicer compiles and runs a MiniC program, then answers dynamic
// slicing queries against it.
//
// Usage:
//
//	slicer -src prog.mc [-input 1,2,3] [-algo opt|fp|lp] [-var g] [-addr n]
//	       [-vars a,b,c] [-workers n] [-ir] [-stats] [-repl] [-compact=false]
//	       [-explain line|sID] [-metrics out.json] [-timeline out.json]
//	       [-pprof localhost:6060] [-querylog out.jsonl] [-slowms n]
//	       [-qtrace out.jsonl] [-qtrace-slow ms] [-qtrace-sample n]
//	       [-snapshot] [-snapshot-dir dir] [-plan auto|fp|lp|opt|reexec|forward]
//
// With -var (a global variable) or -addr (a raw address), the tool prints
// the dynamic slice of that location's final value: the source lines it
// transitively depends on, via data and control dependences actually
// exercised in this run. -vars takes a comma-separated list of globals
// and answers them as ONE batched query (shared backward traversal),
// dispatched over -workers concurrent workers (see docs/PERFORMANCE.md).
//
// -explain runs the query as an observed traversal and additionally
// prints the per-query profile (nodes visited, explicit vs inferred edge
// resolutions per optimization family) and the dependence-path witness —
// the concrete chain criterion ← dep ← … ← stmt — for the statement
// named by its argument (a source line, or s<ID>). See docs/EXPLAIN.md.
//
// -metrics writes a telemetry snapshot (phase spans, algorithm counters;
// see docs/OBSERVABILITY.md) as JSON when the tool exits. -timeline
// writes the span tree and pipeline-worker activity as Chrome
// trace-event JSON for chrome://tracing or Perfetto.
//
// -querylog appends one JSONL audit record per slicing query (the query
// flight recorder: query ID, backend, latency, cache attribution,
// result size; see docs/OBSERVABILITY.md). -slowms N additionally logs
// queries slower than N milliseconds as structured slog warnings on
// stderr.
//
// -qtrace turns on per-query causal tracing (docs/OBSERVABILITY.md
// "Per-query tracing"): every query gets a span tree — planner decision,
// fallback-ladder rungs with demotion error classes, backend execution,
// snapshot load — and the tail-based sampler streams the retained ones
// (slow, errored, demoted, cache-missed, or 1-in-N sampled) to the given
// JSONL file. -qtrace-slow and -qtrace-sample tune the policy; with
// -timeline, retained traces also render onto the Chrome trace-event
// timeline; with -pprof, /debug/qtrace serves the retained ring live.
//
// -plan selects how queries are dispatched. "auto" sends every query
// through the cost-based planner (docs/PLANNER.md): the cheapest
// backend for the query's shape answers, graphs are built lazily only
// when the planner decides they pay for themselves, and the forward
// and re-execution backends join the candidate set. Any other value
// pins one backend — a superset of -algo that adds reexec (answer by
// resuming the interpreter from checkpoints) and forward (precomputed
// forward sets). -plan overrides -algo when both are given.
//
// -snapshot turns on the persistent graph cache: the FP and OPT graphs
// are loaded from a content-addressed on-disk image when a matching one
// exists (skipping program execution entirely — LP is unavailable in
// that case) and saved after a fresh build. -snapshot-dir overrides the
// cache directory. See docs/PERFORMANCE.md "Snapshot format".
//
// -pprof serves an explicit-mux HTTP server for the life of the process
// — most useful together with -repl:
//
//	/debug/pprof       net/http/pprof profiles
//	/debug/vars        expvar (live registry under the "dynslice" var)
//	/debug/queries     the recent-query ring as JSON
//	/debug/qtrace      the retained causal-trace ring (summaries;
//	                   /debug/qtrace/<id> for one full span tree)
//	/metrics           Prometheus text exposition: every registry
//	                   counter/gauge/histogram plus per-backend query
//	                   latency histograms (with trace-id exemplars) and
//	                   cache/batch series
package main

import (
	"bufio"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	slicer "dynslice"
	"dynslice/internal/ir"
	"dynslice/internal/slicing/explain"
	"dynslice/internal/telemetry"
	"dynslice/internal/telemetry/qtrace"
	"dynslice/internal/telemetry/querylog"
	"dynslice/internal/telemetry/stats"
)

func main() {
	srcPath := flag.String("src", "", "MiniC source file (required)")
	inputCSV := flag.String("input", "", "comma-separated input() values")
	algo := flag.String("algo", "opt", "slicing algorithm: opt, fp, or lp")
	varName := flag.String("var", "", "slice on the final value of this global variable")
	varsCSV := flag.String("vars", "", "comma-separated globals: answer all of them as one batched query")
	workers := flag.Int("workers", 0, "concurrent query workers for -vars (default 4)")
	addr := flag.Int64("addr", -1, "slice on the final definition of this address")
	dumpIR := flag.Bool("ir", false, "dump the lowered IR and exit")
	showStats := flag.Bool("stats", false, "print graph statistics")
	repl := flag.Bool("repl", false, "interactive mode: read criteria from stdin (var NAME | addr N | algo opt|fp|lp | quit)")
	compact := flag.Bool("compact", true, "store dependence labels as delta-varint blocks (-compact=false keeps flat pairs)")
	metricsOut := flag.String("metrics", "", "write a telemetry JSON snapshot to this file on exit")
	explainSpec := flag.String("explain", "", "with -var/-addr: print a dependence-path witness for this slice statement (source line number, or s<ID> for a statement id) plus the query's traversal profile")
	timelineOut := flag.String("timeline", "", "write a Chrome trace-event timeline (phase spans + pipeline worker activity) to this file on exit; open in chrome://tracing or Perfetto")
	pprofAddr := flag.String("pprof", "", "serve pprof, expvar, /metrics (Prometheus), and /debug/queries on this address (e.g. localhost:6060)")
	querylogOut := flag.String("querylog", "", "append one JSONL audit record per slicing query to this file")
	slowMS := flag.Int("slowms", 0, "log queries slower than this many milliseconds as slog warnings on stderr")
	qtraceOut := flag.String("qtrace", "", "per-query causal tracing: stream retained (tail-sampled) span trees to this JSONL file")
	qtraceSlowMS := flag.Int("qtrace-slow", 25, "qtrace: retain traces of queries slower than this many milliseconds (0 disables the slow trigger)")
	qtraceSample := flag.Int("qtrace-sample", 128, "qtrace: additionally retain a deterministic 1-in-N sample of all queries (0 disables sampling)")
	useSnap := flag.Bool("snapshot", false, "use the persistent graph cache: load the FP/OPT graphs from a content-addressed snapshot when one matches (skipping execution entirely), and save them after a fresh build")
	snapDir := flag.String("snapshot-dir", "", "snapshot cache directory (default: the per-user cache dir)")
	planMode := flag.String("plan", "", "query dispatch: auto (cost-based planner picks the backend per query) or a pinned backend: fp, lp, opt, reexec, forward (overrides -algo)")
	flag.Parse()

	if *srcPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var reg *telemetry.Registry
	if *metricsOut != "" || *pprofAddr != "" || *timelineOut != "" {
		reg = telemetry.New()
		reg.PublishExpvar("dynslice")
	}
	// The query flight recorder and workload statistics back -querylog,
	// -slowms, and the -pprof server's /metrics and /debug/queries.
	var qlog *querylog.Log
	var qstats *stats.Recorder
	if *querylogOut != "" || *slowMS > 0 || *pprofAddr != "" {
		qlog = querylog.New(512)
		qstats = stats.New()
	}
	if *querylogOut != "" {
		qf, err := os.Create(*querylogOut)
		check(err)
		defer func() {
			if err := qlog.SinkErr(); err != nil {
				fmt.Fprintln(os.Stderr, "slicer: querylog:", err)
			}
			qf.Close()
		}()
		qlog.SetSink(qf)
	}
	if *slowMS > 0 {
		qlog.SetSlowQuery(time.Duration(*slowMS)*time.Millisecond,
			slog.New(slog.NewTextHandler(os.Stderr, nil)))
	}
	// Per-query causal tracing backs -qtrace and the -pprof server's
	// /debug/qtrace endpoints.
	var qtr *qtrace.Tracer
	if *qtraceOut != "" || *pprofAddr != "" {
		pol := qtrace.DefaultPolicy()
		pol.Slow = time.Duration(*qtraceSlowMS) * time.Millisecond
		pol.SampleN = *qtraceSample
		qtr = qtrace.New(0, pol)
	}
	if *qtraceOut != "" {
		tf, err := os.Create(*qtraceOut)
		check(err)
		defer func() {
			if err := qtr.SinkErr(); err != nil {
				fmt.Fprintln(os.Stderr, "slicer: qtrace:", err)
			}
			tf.Close()
		}()
		qtr.SetSink(tf)
	}
	if *timelineOut != "" {
		reg.AttachTimeline(telemetry.NewTimeline())
	}
	if *metricsOut != "" || *timelineOut != "" {
		// Registered as both a defer and the check() exit hook: error
		// exits are exactly when the interp.err.* counters matter.
		metrics, timeline := *metricsOut, *timelineOut
		onExit = func() {
			if metrics != "" {
				if err := reg.WriteFile(metrics); err != nil {
					fmt.Fprintln(os.Stderr, "slicer: metrics:", err)
				} else {
					fmt.Printf("wrote metrics to %s\n", metrics)
				}
			}
			if timeline != "" {
				// Retained causal traces render onto the same timeline —
				// each query's span tree stacks on its own trace-id row.
				qtr.WriteTimeline(reg.Timeline())
				if err := reg.Timeline().WriteFile(timeline); err != nil {
					fmt.Fprintln(os.Stderr, "slicer: timeline:", err)
				} else {
					fmt.Printf("wrote timeline to %s\n", timeline)
				}
			}
		}
		defer onExit()
	}
	if *pprofAddr != "" {
		// Listen synchronously so a bad address fails the run instead of
		// printing from a goroutine after startup.
		ln, err := net.Listen("tcp", *pprofAddr)
		check(err)
		srv := &http.Server{
			Handler:           debugMux(reg, qlog, qstats, qtr),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "slicer: pprof:", err)
			}
		}()
		fmt.Printf("debug server listening on http://%s (pprof at /debug/pprof, vars at /debug/vars, queries at /debug/queries, traces at /debug/qtrace, Prometheus at /metrics)\n", ln.Addr())
	}
	src, err := os.ReadFile(*srcPath)
	check(err)
	prog, err := slicer.CompileWith(string(src), reg)
	check(err)
	if *dumpIR {
		fmt.Print(prog.DumpIR())
		return
	}

	var input []int64
	if *inputCSV != "" {
		for _, f := range strings.Split(*inputCSV, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			check(err)
			input = append(input, v)
		}
	}
	switch *planMode {
	case "", "auto", "fp", "lp", "opt", "reexec", "forward":
	default:
		check(fmt.Errorf("unknown -plan mode %q (use auto, fp, lp, opt, reexec, or forward)", *planMode))
	}
	rec, err := prog.Record(slicer.RunOptions{
		Input: input, Telemetry: reg, PlainLabels: !*compact,
		QueryLog: qlog, QueryStats: qstats, QueryTrace: qtr,
		// The forward index only exists if computed during the run, so
		// build it whenever the forward backend could be asked for.
		WithForward: *planMode == "auto" || *planMode == "forward",
		Snapshot:    slicer.SnapshotOptions{Dir: *snapDir, Read: *useSnap, Write: *useSnap},
	})
	check(err)
	defer rec.Close()

	if rec.Source() == "snapshot" {
		fmt.Printf("loaded graphs from snapshot cache; recorded run: %d statements; output: %v; main returned %d\n",
			rec.Steps, rec.Output, rec.Return)
	} else {
		fmt.Printf("executed %d statements; output: %v; main returned %d\n",
			rec.Steps, rec.Output, rec.Return)
	}
	if *showStats {
		st := rec.Stats()
		fmt.Printf("graphs: FP %d labels (%.2f MB), OPT %d labels (%.2f MB), %d static edges, %d path nodes\n",
			st.FPLabelPairs, float64(st.FPSizeBytes)/(1<<20),
			st.OPTLabelPairs, float64(st.OPTSizeBytes)/(1<<20),
			st.StaticEdges, st.PathNodes)
	}

	// -plan auto answers through the planned engine (no pinned backend);
	// any other -plan value pins a backend, overriding -algo.
	auto := *planMode == "auto"
	backend := *algo
	if *planMode != "" && !auto {
		backend = *planMode
	}
	var s *slicer.Slicer
	if !auto {
		s = pickBackend(rec, backend)
		if s == nil {
			check(fmt.Errorf("unknown algorithm %q", backend))
		}
	}
	var eng *slicer.QueryEngine
	if auto {
		eng = rec.Engine(slicer.EngineOptions{Workers: *workers})
	}

	if *repl {
		runREPL(rec, s, eng, string(src))
		return
	}

	if *varsCSV != "" {
		names := strings.Split(*varsCSV, ",")
		addrs := make([]int64, len(names))
		for i, n := range names {
			a, err := prog.GlobalAddr(strings.TrimSpace(n))
			check(err)
			addrs[i] = a
		}
		if !auto {
			eng = s.Engine(slicer.EngineOptions{Workers: *workers})
		}
		slices, err := eng.SliceAddrs(addrs)
		check(err)
		for i, sl := range slices {
			fmt.Printf("--- %s\n", strings.TrimSpace(names[i]))
			printSlice(backendLabel(s), sl, string(src))
		}
		return
	}

	if *explainSpec != "" {
		var ex *slicer.Explanation
		switch {
		case auto && *varName != "":
			ex, err = eng.ExplainVar(*varName)
		case auto && *addr >= 0:
			ex, err = eng.Explain(*addr)
		case *varName != "":
			ex, err = s.ExplainVar(*varName)
		case *addr >= 0:
			ex, err = s.ExplainAddr(*addr)
		default:
			check(fmt.Errorf("-explain needs a criterion: pass -var or -addr"))
		}
		check(err)
		printSlice(backendLabel(s), ex.Slice, string(src))
		printExplanation(ex, *explainSpec)
		return
	}

	var sl *slicer.Slice
	switch {
	case auto && *varName != "":
		sl, err = eng.SliceVar(*varName)
	case auto && *addr >= 0:
		sl, err = eng.SliceAddr(*addr)
	case *varName != "":
		sl, err = s.SliceVar(*varName)
	case *addr >= 0:
		sl, err = s.SliceAddr(*addr)
	default:
		return // run-only mode
	}
	check(err)
	printSlice(backendLabel(s), sl, string(src))
}

// pickBackend maps a backend name to its slicer; nil for unknown names.
func pickBackend(rec *slicer.Recording, name string) *slicer.Slicer {
	switch name {
	case "opt":
		return rec.OPT()
	case "fp":
		return rec.FP()
	case "lp":
		return rec.LP()
	case "reexec":
		return rec.Reexec()
	case "forward":
		return rec.Forward()
	}
	return nil
}

// backendLabel names the answering configuration for output headers:
// the pinned backend, or "auto" when the planner chose per query (the
// per-query attribution lands in the -querylog audit records).
func backendLabel(s *slicer.Slicer) string {
	if s == nil {
		return "auto"
	}
	return s.Name()
}

// printExplanation prints the traversal profile and the witness chain for
// the statement named by spec ("s<ID>" or a source line number).
func printExplanation(ex *slicer.Explanation, spec string) {
	p := ex.Profile
	fmt.Printf("profile: %d nodes visited, %d label probes, %d edges (%d explicit, %d inferred, %d shortcut)\n",
		p.NodesVisited, p.LabelProbes, p.Edges, p.Explicit, p.Inferred, p.Shortcut)
	for kind, n := range p.ByKind {
		fmt.Printf("  %-18s %d\n", kind, n)
	}

	var (
		w  *explain.Witness
		ok bool
	)
	if rest, found := strings.CutPrefix(spec, "s"); found {
		id, err := strconv.Atoi(rest)
		check(err)
		w, ok = ex.Witness(ir.StmtID(id))
	} else {
		line, err := strconv.Atoi(spec)
		check(err)
		w, ok = ex.WitnessAtLine(line)
	}
	if !ok {
		fmt.Printf("no witness: %s is not in the slice\n", spec)
		return
	}
	fmt.Print(ex.FormatWitness(w))
}

func printSlice(name string, sl *slicer.Slice, src string) {
	fmt.Printf("%s slice: %d statements, %d source lines (%.3f ms)\n",
		name, sl.Stmts, len(sl.Lines), float64(sl.Time.Microseconds())/1000)
	lines := strings.Split(src, "\n")
	for _, ln := range sl.Lines {
		if ln-1 < len(lines) {
			fmt.Printf("%4d | %s\n", ln, lines[ln-1])
		}
	}
}

// runREPL answers slicing queries interactively against one recording —
// the usage pattern the paper optimizes for: many slices, one build.
// With eng set (started under -plan auto) queries dispatch through the
// cost-based planner; `algo` switches between pinned backends and
// `algo auto` back to the planner.
func runREPL(rec *slicer.Recording, s *slicer.Slicer, eng *slicer.QueryEngine, src string) {
	sliceVar := func(name string) (*slicer.Slice, error) {
		if eng != nil {
			return eng.SliceVar(name)
		}
		return s.SliceVar(name)
	}
	sliceAddr := func(a int64) (*slicer.Slice, error) {
		if eng != nil {
			return eng.SliceAddr(a)
		}
		return s.SliceAddr(a)
	}
	label := func() string {
		if eng != nil {
			return "auto"
		}
		return strings.ToLower(s.Name())
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Println("slicer repl — commands: var NAME | addr N | algo auto|opt|fp|lp|reexec|forward | quit")
	fmt.Printf("[%s]> ", label())
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Printf("[%s]> ", label())
			continue
		}
		switch fields[0] {
		case "quit", "exit", "q":
			return
		case "algo":
			if len(fields) == 2 {
				if fields[1] == "auto" {
					if eng == nil {
						eng = rec.Engine(slicer.EngineOptions{})
					}
				} else if next := pickBackend(rec, fields[1]); next != nil {
					s, eng = next, nil
				} else {
					fmt.Println("unknown algorithm; use auto, opt, fp, lp, reexec, or forward")
				}
			}
		case "var":
			if len(fields) == 2 {
				if sl, err := sliceVar(fields[1]); err != nil {
					fmt.Println("error:", err)
				} else {
					printSlice(label(), sl, src)
				}
			}
		case "addr":
			if len(fields) == 2 {
				if a, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					if sl, serr := sliceAddr(a); serr != nil {
						fmt.Println("error:", serr)
					} else {
						printSlice(label(), sl, src)
					}
				}
			}
		default:
			fmt.Println("commands: var NAME | addr N | algo auto|opt|fp|lp|reexec|forward | quit")
		}
		fmt.Printf("[%s]> ", label())
	}
}

// debugMux builds the -pprof server's handler: an explicit mux (not
// http.DefaultServeMux, so nothing else in the process can silently
// register handlers on it) carrying pprof, expvar, the query ring, and
// the Prometheus text exposition.
func debugMux(reg *telemetry.Registry, qlog *querylog.Log, qstats *stats.Recorder, qtr *qtrace.Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/queries", qlog)
	// One handler serves both the ring listing and /debug/qtrace/<id>.
	mux.Handle("/debug/qtrace", qtr)
	mux.Handle("/debug/qtrace/", qtr)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", telemetry.PromContentType)
		if err := reg.WritePrometheus(w, "dynslice"); err != nil {
			return
		}
		qstats.Snapshot().WritePrometheus(w, "dynslice")
		if qlog != nil {
			fmt.Fprintf(w, "# HELP dynslice_querylog_total Queries recorded by the flight recorder.\n")
			fmt.Fprintf(w, "# TYPE dynslice_querylog_total counter\n")
			fmt.Fprintf(w, "dynslice_querylog_total %d\n", qlog.Total())
			fmt.Fprintf(w, "# HELP dynslice_querylog_slow_total Queries over the -slowms threshold.\n")
			fmt.Fprintf(w, "# TYPE dynslice_querylog_slow_total counter\n")
			fmt.Fprintf(w, "dynslice_querylog_slow_total %d\n", qlog.SlowQueries())
		}
	})
	return mux
}

// onExit, when set, runs before an error exit (os.Exit skips defers).
var onExit func()

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "slicer:", err)
		if onExit != nil {
			onExit()
		}
		os.Exit(1)
	}
}
