package slicer_test

// Integration coverage for the query flight recorder: every query
// answered through the façade or the QueryEngine must leave exactly one
// well-formed audit record, cache hits must be attributed, and the
// workload statistics must reflect the stream. See docs/OBSERVABILITY.md.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"

	slicer "dynslice"
	"dynslice/internal/telemetry/querylog"
	"dynslice/internal/telemetry/stats"
)

// recordObserved is record() with a query log and stats recorder
// attached.
func recordObserved(t *testing.T, src string, input ...int64) (*slicer.Recording, *querylog.Log, *stats.Recorder) {
	t.Helper()
	p, err := slicer.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	qlog := querylog.New(1024)
	qst := stats.New()
	rec, err := p.Record(slicer.RunOptions{
		Input: input, QueryLog: qlog, QueryStats: qst, TrackCriteria: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rec.Close)
	return rec, qlog, qst
}

func TestQueryAuditRecords(t *testing.T) {
	rec, qlog, _ := recordObserved(t, engineSrc)
	addrs := engineAddrs(t, rec)
	s := rec.OPT()

	// Single façade query: one slice record carrying the slice's ID.
	sl, err := s.SliceAddr(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if sl.QueryID == 0 {
		t.Error("observed slice has no QueryID")
	}
	recs := qlog.Recent(1)
	if len(recs) != 1 {
		t.Fatalf("no audit record after SliceAddr")
	}
	r := recs[0]
	if r.ID != sl.QueryID || r.Backend != "OPT" || r.Kind != querylog.KindSlice ||
		r.Addr != addrs[0] || r.CacheHit || r.Stmts != sl.Stmts || r.Err != "" {
		t.Errorf("bad slice record %+v", r)
	}
	if r.Latency <= 0 {
		t.Errorf("slice record latency %v", r.Latency)
	}

	// Batched façade query: one record per criterion, aggregate stats on
	// the first record only.
	before := qlog.Total()
	slices, err := s.SliceAddrs(addrs)
	if err != nil {
		t.Fatal(err)
	}
	if got := qlog.Total() - before; got != uint64(len(addrs)) {
		t.Fatalf("batch of %d produced %d records", len(addrs), got)
	}
	batchRecs := qlog.Recent(len(addrs)) // newest first
	var withStats int
	for i, br := range batchRecs {
		if br.Kind != querylog.KindBatch || br.Batch != len(addrs) {
			t.Errorf("batch record %d: kind=%q batch=%d", i, br.Kind, br.Batch)
		}
		if br.Instances > 0 {
			withStats++
		}
	}
	if withStats > 1 {
		t.Errorf("batch aggregate stats on %d records, want at most 1", withStats)
	}
	for i, bsl := range slices {
		if bsl.QueryID == 0 {
			t.Errorf("batched slice %d has no QueryID", i)
		}
	}

	// Failed query: classified error record, no result fields.
	before = qlog.Total()
	if _, err := s.SliceAddr(1 << 40); err == nil {
		t.Fatal("expected error for bogus address")
	}
	if qlog.Total() != before+1 {
		t.Fatalf("error query did not log")
	}
	er := qlog.Recent(1)[0]
	if er.Err != "bad_criterion" || er.Stmts != 0 {
		t.Errorf("bad error record %+v", er)
	}
}

func TestQueryIDsMonotonic(t *testing.T) {
	rec, qlog, _ := recordObserved(t, engineSrc)
	addrs := engineAddrs(t, rec)
	s := rec.FP()
	for _, a := range addrs[:5] {
		if _, err := s.SliceAddr(a); err != nil {
			t.Fatal(err)
		}
	}
	recs := qlog.Recent(0) // newest first
	for i := 1; i < len(recs); i++ {
		if recs[i-1].ID <= recs[i].ID {
			t.Fatalf("IDs not monotonic: %d then %d", recs[i].ID, recs[i-1].ID)
		}
	}
}

func TestEngineCacheHitAudited(t *testing.T) {
	rec, qlog, qst := recordObserved(t, engineSrc)
	addrs := engineAddrs(t, rec)
	e := rec.OPT().Engine(slicer.EngineOptions{})

	first, err := e.SliceAddr(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.SliceAddr(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	// The cached slice keeps its originating query's ID; the hit itself
	// is audited under a fresh ID with CacheHit set.
	if second.QueryID != first.QueryID {
		t.Errorf("cached slice QueryID changed: %d -> %d", first.QueryID, second.QueryID)
	}
	hit := qlog.Recent(1)[0]
	if !hit.CacheHit || hit.ID == first.QueryID || hit.Kind != querylog.KindSlice {
		t.Errorf("bad cache-hit record %+v", hit)
	}
	if hit.Stmts != first.Stmts {
		t.Errorf("cache-hit record stmts %d, want %d", hit.Stmts, first.Stmts)
	}
	snap := qst.Snapshot()
	if snap.CacheHits != 1 || snap.Backends["OPT"].CacheHit != 1 {
		t.Errorf("stats cache hits = %d (backend %d), want 1", snap.CacheHits, snap.Backends["OPT"].CacheHit)
	}
}

func TestExplainAuditFoldsAttribution(t *testing.T) {
	rec, qlog, qst := recordObserved(t, engineSrc)
	addrs := engineAddrs(t, rec)
	if _, err := rec.OPT().ExplainAddr(addrs[len(addrs)-1]); err != nil {
		t.Fatal(err)
	}
	r := qlog.Recent(1)[0]
	if r.Kind != querylog.KindExplain || r.Backend != "OPT" {
		t.Fatalf("bad explain record %+v", r)
	}
	if r.Explicit+r.Inferred+r.Shortcut == 0 {
		t.Error("explain record carries no edge attribution")
	}
	if r.Instances == 0 {
		t.Error("explain record carries no traversal effort")
	}
	opt := qst.Snapshot().Backends["OPT"]
	if opt.Observed != 1 || opt.ExplicitEdges != r.Explicit || opt.InferredEdges != r.Inferred {
		t.Errorf("stats did not fold explain attribution: %+v vs record %+v", opt, r)
	}
}

func TestQuerylogJSONLRoundTrip(t *testing.T) {
	rec, qlog, _ := recordObserved(t, engineSrc)
	addrs := engineAddrs(t, rec)
	if _, err := rec.LP().SliceAddrs(addrs[:4]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := qlog.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var r querylog.Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if r.ID == 0 || r.Backend != "LP" || r.Start.IsZero() {
			t.Errorf("line %d: malformed record %+v", n, r)
		}
		n++
	}
	if n != 4 {
		t.Errorf("exported %d lines, want 4", n)
	}
}

func TestTrackCriteria(t *testing.T) {
	rec, _, _ := recordObserved(t, engineSrc)
	crit := rec.Criteria()
	if len(crit) != 10 {
		t.Fatalf("tracked %d criteria, want 10", len(crit))
	}
	seen := map[int64]bool{}
	for _, a := range crit {
		if seen[a] {
			t.Errorf("duplicate criterion %d", a)
		}
		seen[a] = true
		// Every tracked criterion must be sliceable.
		if _, err := rec.OPT().SliceAddr(a); err != nil {
			t.Errorf("criterion %d not sliceable: %v", a, err)
		}
	}
}

// TestQuerylogConcurrentHammer runs concurrent engine queries against a
// shared flight recorder while /debug/queries readers walk the ring —
// the root-level race coverage for the audit path (`make test-race`).
func TestQuerylogConcurrentHammer(t *testing.T) {
	rec, qlog, qst := recordObserved(t, engineSrc)
	addrs := engineAddrs(t, rec)
	e := rec.OPT().Engine(slicer.EngineOptions{Workers: 4, CacheSize: 8})

	const goroutines, rounds = 8, 4
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if gi%2 == 0 {
					if _, err := e.SliceAddrs(addrs); err != nil {
						t.Error(err)
						return
					}
				} else {
					for _, a := range addrs {
						if _, err := e.SliceAddr(a); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}
		}(gi)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for ri := 0; ri < 2; ri++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rr := httptest.NewRecorder()
				qlog.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/queries?n=16", nil))
				if rr.Code != 200 {
					t.Errorf("/debug/queries status %d", rr.Code)
					return
				}
				_ = qst.Snapshot()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	want := uint64(goroutines * rounds * len(addrs))
	if qlog.Total() != want {
		t.Errorf("audit records = %d, want %d (one per query)", qlog.Total(), want)
	}
	snap := qst.Snapshot()
	if snap.Queries != int64(want) {
		t.Errorf("stats queries = %d, want %d", snap.Queries, want)
	}
	if snap.CacheHits == 0 {
		t.Error("no cache hits under hammer")
	}
}
