package slicer

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dynslice/internal/slicing/plan"
	"dynslice/internal/telemetry/qtrace"
	"dynslice/internal/telemetry/querylog"
)

// EngineOptions configures a QueryEngine.
type EngineOptions struct {
	// Workers bounds the worker pool a batched SliceAddrs traversal runs
	// on (default: 4). The pool lives inside the backend's work-stealing
	// scheduler, so concurrent workers share one visited table instead of
	// re-walking subgraphs their siblings already covered; backends
	// without a scheduler (LP's trace scan) answer the batch in one pass
	// regardless.
	Workers int
	// CacheSize is the number of slices the LRU cache retains, keyed by
	// criterion address (default: 64; negative disables caching).
	CacheSize int
}

const (
	defaultEngineWorkers = 4
	defaultEngineCache   = 64
)

// QueryEngine answers slicing queries concurrently with a small LRU
// result cache. All its methods are safe for concurrent use. Repeated
// criteria — common when a user explores a fault from several variables
// that share dependences — hit the cache and cost one map lookup.
//
// An engine wraps either one fixed Slicer (Slicer.Engine) or, when
// created with Recording.Engine, the cost-based planner: each cache
// miss consults plan.Decide for the cheapest backend given the query's
// shape, which graphs are warm, and the live workload statistics, then
// walks the decision's fallback ladder until a backend answers. All
// backends return identical slices (the differential matrix proves
// it), so the shared cache and the planner only ever change latency,
// never answers.
type QueryEngine struct {
	s       *Slicer    // fixed backend; nil for a planned engine
	rec     *Recording // owning recording (always set)
	workers int

	mu    sync.Mutex
	cache map[int64]*list.Element // addr -> entry; nil when disabled
	lru   list.List               // front = most recent
	max   int

	hits, misses atomic.Int64
}

type cacheEntry struct {
	addr    int64
	sl      *Slice
	backend string // backend that computed the slice (for hit audit records)
}

// Engine wraps the slicer in a concurrent query engine with a fixed
// backend.
func (s *Slicer) Engine(o EngineOptions) *QueryEngine {
	e := newEngine(s.rec, o)
	e.s = s
	return e
}

// Engine returns a planned query engine: every cache miss is dispatched
// to the backend the cost-based planner picks for it (see
// docs/PLANNER.md). The planner never changes results — only which
// backend computes them.
func (r *Recording) Engine(o EngineOptions) *QueryEngine {
	return newEngine(r, o)
}

func newEngine(r *Recording, o EngineOptions) *QueryEngine {
	e := &QueryEngine{rec: r, workers: o.Workers, max: o.CacheSize}
	if e.workers <= 0 {
		e.workers = defaultEngineWorkers
	}
	if e.max == 0 {
		e.max = defaultEngineCache
	}
	if e.max > 0 {
		e.cache = make(map[int64]*list.Element, e.max)
	}
	return e
}

// errNoBackend is returned by a planned engine when no backend at all
// can answer the query shape.
var errNoBackend = errors.New("slicer: no backend available for this query")

// dispatch plans one query shape and walks the fallback ladder: the
// chosen backend first, then the remaining candidates cheapest-first.
// Backend faults (a desynced re-execution, a missing trace file) move
// down the ladder; criterion errors are terminal — every backend would
// reject the same address the same way, because answers never differ.
//
// The query's causal trace records the walk as it happens: a "plan"
// span carrying the decision (chosen backend, reason, per-backend cost
// estimates), then one "attempt/<backend>" span per rung — each with an
// "acquire" child covering backend acquisition (which is where deferred
// graphs get built) — ending with the error class that demoted it, or
// cleanly for the rung that answered.
func (e *QueryEngine) dispatch(qt *qtrace.Trace, shape plan.Shape, run func(*Slicer) error) error {
	d := e.rec.PlanFor(shape)
	if qt != nil {
		psp := qt.Root().Child("plan").Str("backend", d.Backend).Str("reason", d.Reason)
		for _, name := range plannedCostOrder(d.CostMs) {
			psp.Str("cost/"+name, fmt.Sprintf("%.3fms", d.CostMs[name]))
		}
		psp.End()
		qt.SetPlan(d.Backend)
	}
	if d.Backend == "" {
		qt.SetError(querylog.Classify(errNoBackend))
		return errNoBackend
	}
	ladder := d.Ladder()
	var lastErr error
	for i, name := range ladder {
		asp := qt.Root().Child("attempt/" + name)
		acq := asp.Child("acquire")
		s := e.rec.backendSlicer(name)
		if s == nil {
			acq.End()
			asp.EndErr("unavailable")
			continue
		}
		acq.End()
		// Each attempt gets a fresh *Slicer stamped with the plan (and
		// the trace), so concurrent dispatches never share mutable
		// attribution state.
		s.plan = d.Backend
		if i == 0 {
			s.planReason = d.Reason
		} else {
			s.planReason = fmt.Sprintf("fallback from %s: %v", ladder[i-1], lastErr)
		}
		s.qt, s.qspan = qt, asp
		err := run(s)
		if err == nil {
			asp.End()
			qt.SetBackend(s.name)
			return nil
		}
		class := querylog.Classify(err)
		asp.EndErr(class)
		if class == "bad_criterion" {
			qt.SetError(class)
			return err
		}
		lastErr = err
	}
	qt.SetError(querylog.Classify(lastErr))
	return lastErr
}

// plannedCostOrder returns the cost map's backends in a stable order so
// plan-span attributes don't depend on map iteration.
func plannedCostOrder(costs map[string]float64) []string {
	names := make([]string, 0, len(costs))
	for name := range costs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CacheStats reports cache hits and misses since the engine was created.
func (e *QueryEngine) CacheStats() (hits, misses int64) {
	return e.hits.Load(), e.misses.Load()
}

func (e *QueryEngine) lookup(addr int64) (*Slice, string, bool) {
	if e.cache == nil {
		return nil, "", false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.cache[addr]
	if !ok {
		return nil, "", false
	}
	e.lru.MoveToFront(el)
	ent := el.Value.(*cacheEntry)
	return ent.sl, ent.backend, true
}

func (e *QueryEngine) insert(addr int64, sl *Slice, backend string) {
	if e.cache == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.cache[addr]; ok {
		e.lru.MoveToFront(el)
		return
	}
	e.cache[addr] = e.lru.PushFront(&cacheEntry{addr: addr, sl: sl, backend: backend})
	if e.lru.Len() > e.max {
		old := e.lru.Back()
		e.lru.Remove(old)
		delete(e.cache, old.Value.(*cacheEntry).addr)
	}
}

func (e *QueryEngine) tally(hits, misses int64) {
	e.hits.Add(hits)
	e.misses.Add(misses)
	if reg := e.rec.tel; reg != nil {
		reg.Counter("engine.cache.hits").Add(hits)
		reg.Counter("engine.cache.misses").Add(misses)
	}
}

// logHit audits one cache-served query: the flight recorder gets a
// fresh query ID with CacheHit set, while the slice keeps the ID of the
// query that originally computed it.
func (e *QueryEngine) logHit(addr int64, sl *Slice, backend, kind string, batch int, start time.Time, tid qtrace.TraceID) {
	rec := e.rec
	if !rec.queryObserved() {
		return
	}
	rec.logQuery(querylog.Record{
		ID: rec.qlog.NextID(), Start: start, Backend: backend, Kind: kind,
		Addr: addr, Batch: batch, Latency: time.Since(start), CacheHit: true,
		Stmts: sl.Stmts, Lines: len(sl.Lines), TraceID: tid,
	})
}

// SliceAddr answers one address criterion, consulting the cache first.
func (e *QueryEngine) SliceAddr(addr int64) (*Slice, error) {
	var start time.Time
	if e.rec.queryObserved() {
		start = time.Now()
	}
	qt := e.rec.qtr.StartQuery(querylog.KindSlice, addr, 0)
	if sl, backend, ok := e.lookup(addr); ok {
		e.tally(1, 0)
		qt.SetCacheHit()
		qt.SetBackend(backend)
		e.logHit(addr, sl, backend, querylog.KindSlice, 0, start, qt.ID())
		e.rec.finishTrace(qt)
		return sl, nil
	}
	e.tally(0, 1)
	qt.SetCacheMiss()
	var sl *Slice
	var backend string
	var err error
	if e.s != nil {
		backend = e.s.name
		sl, err = e.s.withTrace(qt, qt.Root()).SliceAddr(addr)
		e.noteFixed(qt, backend, err)
	} else {
		err = e.dispatch(qt, plan.Shape{Kind: plan.KindSlice, Batch: 1}, func(s *Slicer) error {
			var rerr error
			sl, rerr = s.SliceAddr(addr)
			backend = s.name
			return rerr
		})
	}
	e.rec.finishTrace(qt)
	if err != nil {
		return nil, err
	}
	e.insert(addr, sl, backend)
	return sl, nil
}

// noteFixed stamps a fixed-backend query's outcome on its trace
// (dispatch does this for planned queries).
func (e *QueryEngine) noteFixed(qt *qtrace.Trace, backend string, err error) {
	if qt == nil {
		return
	}
	if err != nil {
		qt.SetError(querylog.Classify(err))
		return
	}
	qt.SetBackend(backend)
}

// SliceVar is SliceAddr on a global scalar variable.
func (e *QueryEngine) SliceVar(name string) (*Slice, error) {
	addr, err := e.rec.p.GlobalAddr(name)
	if err != nil {
		return nil, err
	}
	return e.SliceAddr(addr)
}

// Explain answers one address criterion with provenance recording
// (Slicer.ExplainAddr). Observed queries bypass the cache: the witness
// and profile are products of an actual traversal, so a cached slice
// cannot answer them. The slice itself is still inserted, so later
// SliceAddr calls for the same address hit. A planned engine plans the
// explain shape (forward slicing is never a candidate: it cannot
// attribute edges).
func (e *QueryEngine) Explain(addr int64) (*Explanation, error) {
	qt := e.rec.qtr.StartQuery(querylog.KindExplain, addr, 0)
	var ex *Explanation
	var backend string
	var err error
	if e.s != nil {
		backend = e.s.name
		ex, err = e.s.withTrace(qt, qt.Root()).ExplainAddr(addr)
		e.noteFixed(qt, backend, err)
	} else {
		err = e.dispatch(qt, plan.Shape{Kind: plan.KindExplain, Batch: 1}, func(s *Slicer) error {
			var rerr error
			ex, rerr = s.ExplainAddr(addr)
			backend = s.name
			return rerr
		})
	}
	e.rec.finishTrace(qt)
	if err != nil {
		return nil, err
	}
	e.insert(addr, ex.Slice, backend)
	return ex, nil
}

// ExplainVar is Explain on a global scalar variable.
func (e *QueryEngine) ExplainVar(name string) (*Explanation, error) {
	addr, err := e.rec.p.GlobalAddr(name)
	if err != nil {
		return nil, err
	}
	return e.Explain(addr)
}

// SliceAddrs answers a batch of criteria: cached results are returned
// directly; the distinct misses are answered by ONE batched traversal
// (SliceAddrs on the underlying slicer), parallelized internally by the
// backend's work-stealing scheduler across the engine's workers. One
// shared traversal beats splitting the batch across goroutines — split
// chunks each re-walk the subgraph the criteria share, which is most of
// the work. Results are positionally aligned with addrs. A planned
// engine plans once per batch, on the distinct-miss count.
func (e *QueryEngine) SliceAddrs(addrs []int64) ([]*Slice, error) {
	if len(addrs) == 0 {
		return nil, nil
	}
	var start time.Time
	if e.rec.queryObserved() {
		start = time.Now()
	}
	qt := e.rec.qtr.StartQuery(querylog.KindBatch, addrs[0], len(addrs))
	outs := make([]*Slice, len(addrs))
	var missSet = make(map[int64][]int) // addr -> positions in addrs
	var hits int64
	for i, a := range addrs {
		if sl, backend, ok := e.lookup(a); ok {
			outs[i] = sl
			hits++
			e.logHit(a, sl, backend, querylog.KindBatch, len(addrs), start, qt.ID())
			continue
		}
		missSet[a] = append(missSet[a], i)
	}
	e.tally(hits, int64(len(missSet)))
	if len(missSet) == 0 {
		// The whole batch came from the cache.
		qt.SetCacheHit()
		e.rec.finishTrace(qt)
		return outs, nil
	}
	qt.SetCacheMiss()
	miss := make([]int64, 0, len(missSet))
	for a := range missSet {
		miss = append(miss, a)
	}
	// Deterministic chunking: map iteration order must not decide which
	// criteria share a 64-bit mask chunk.
	sort.Slice(miss, func(i, j int) bool { return miss[i] < miss[j] })

	var slices []*Slice
	var backend string
	var err error
	if e.s != nil {
		backend = e.s.name
		if sw, ok := e.s.impl.(interface{ SetWorkers(int) }); ok {
			sw.SetWorkers(e.workers)
		}
		slices, err = e.s.withTrace(qt, qt.Root()).SliceAddrs(miss)
		e.noteFixed(qt, backend, err)
	} else {
		err = e.dispatch(qt, plan.Shape{Kind: plan.KindBatch, Batch: len(miss)}, func(s *Slicer) error {
			if sw, ok := s.impl.(interface{ SetWorkers(int) }); ok {
				sw.SetWorkers(e.workers)
			}
			var rerr error
			slices, rerr = s.SliceAddrs(miss)
			backend = s.name
			return rerr
		})
	}
	e.rec.finishTrace(qt)
	if err != nil {
		return nil, err
	}
	for k, sl := range slices {
		e.insert(miss[k], sl, backend)
		for _, pos := range missSet[miss[k]] {
			outs[pos] = sl
		}
	}
	return outs, nil
}
