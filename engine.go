package slicer

import (
	"container/list"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dynslice/internal/telemetry/querylog"
)

// EngineOptions configures a QueryEngine.
type EngineOptions struct {
	// Workers bounds the worker pool a batched SliceAddrs traversal runs
	// on (default: 4). The pool lives inside the backend's work-stealing
	// scheduler, so concurrent workers share one visited table instead of
	// re-walking subgraphs their siblings already covered; backends
	// without a scheduler (LP's trace scan) answer the batch in one pass
	// regardless.
	Workers int
	// CacheSize is the number of slices the LRU cache retains, keyed by
	// criterion address (default: 64; negative disables caching).
	CacheSize int
}

const (
	defaultEngineWorkers = 4
	defaultEngineCache   = 64
)

// QueryEngine answers slicing queries concurrently with a small LRU
// result cache. It wraps one Slicer; all its methods are safe for
// concurrent use. Repeated criteria — common when a user explores a
// fault from several variables that share dependences — hit the cache
// and cost one map lookup.
type QueryEngine struct {
	s       *Slicer
	workers int

	mu    sync.Mutex
	cache map[int64]*list.Element // addr -> entry; nil when disabled
	lru   list.List               // front = most recent
	max   int

	hits, misses atomic.Int64
}

type cacheEntry struct {
	addr int64
	sl   *Slice
}

// Engine wraps the slicer in a concurrent query engine.
func (s *Slicer) Engine(o EngineOptions) *QueryEngine {
	e := &QueryEngine{s: s, workers: o.Workers, max: o.CacheSize}
	if e.workers <= 0 {
		e.workers = defaultEngineWorkers
	}
	if e.max == 0 {
		e.max = defaultEngineCache
	}
	if e.max > 0 {
		e.cache = make(map[int64]*list.Element, e.max)
	}
	return e
}

// CacheStats reports cache hits and misses since the engine was created.
func (e *QueryEngine) CacheStats() (hits, misses int64) {
	return e.hits.Load(), e.misses.Load()
}

func (e *QueryEngine) lookup(addr int64) (*Slice, bool) {
	if e.cache == nil {
		return nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.cache[addr]
	if !ok {
		return nil, false
	}
	e.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).sl, true
}

func (e *QueryEngine) insert(addr int64, sl *Slice) {
	if e.cache == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.cache[addr]; ok {
		e.lru.MoveToFront(el)
		return
	}
	e.cache[addr] = e.lru.PushFront(&cacheEntry{addr: addr, sl: sl})
	if e.lru.Len() > e.max {
		old := e.lru.Back()
		e.lru.Remove(old)
		delete(e.cache, old.Value.(*cacheEntry).addr)
	}
}

func (e *QueryEngine) tally(hits, misses int64) {
	e.hits.Add(hits)
	e.misses.Add(misses)
	if reg := e.s.rec.tel; reg != nil {
		reg.Counter("engine.cache.hits").Add(hits)
		reg.Counter("engine.cache.misses").Add(misses)
	}
}

// logHit audits one cache-served query: the flight recorder gets a
// fresh query ID with CacheHit set, while the slice keeps the ID of the
// query that originally computed it.
func (e *QueryEngine) logHit(addr int64, sl *Slice, kind string, batch int, start time.Time) {
	rec := e.s.rec
	if !rec.queryObserved() {
		return
	}
	rec.logQuery(querylog.Record{
		ID: rec.qlog.NextID(), Start: start, Backend: e.s.name, Kind: kind,
		Addr: addr, Batch: batch, Latency: time.Since(start), CacheHit: true,
		Stmts: sl.Stmts, Lines: len(sl.Lines),
	})
}

// SliceAddr answers one address criterion, consulting the cache first.
func (e *QueryEngine) SliceAddr(addr int64) (*Slice, error) {
	var start time.Time
	if e.s.rec.queryObserved() {
		start = time.Now()
	}
	if sl, ok := e.lookup(addr); ok {
		e.tally(1, 0)
		e.logHit(addr, sl, querylog.KindSlice, 0, start)
		return sl, nil
	}
	e.tally(0, 1)
	sl, err := e.s.SliceAddr(addr)
	if err != nil {
		return nil, err
	}
	e.insert(addr, sl)
	return sl, nil
}

// SliceVar is SliceAddr on a global scalar variable.
func (e *QueryEngine) SliceVar(name string) (*Slice, error) {
	addr, err := e.s.rec.p.GlobalAddr(name)
	if err != nil {
		return nil, err
	}
	return e.SliceAddr(addr)
}

// Explain answers one address criterion with provenance recording
// (Slicer.ExplainAddr). Observed queries bypass the cache: the witness
// and profile are products of an actual traversal, so a cached slice
// cannot answer them. The slice itself is still inserted, so later
// SliceAddr calls for the same address hit.
func (e *QueryEngine) Explain(addr int64) (*Explanation, error) {
	ex, err := e.s.ExplainAddr(addr)
	if err != nil {
		return nil, err
	}
	e.insert(addr, ex.Slice)
	return ex, nil
}

// ExplainVar is Explain on a global scalar variable.
func (e *QueryEngine) ExplainVar(name string) (*Explanation, error) {
	addr, err := e.s.rec.p.GlobalAddr(name)
	if err != nil {
		return nil, err
	}
	return e.Explain(addr)
}

// SliceAddrs answers a batch of criteria: cached results are returned
// directly; the distinct misses are answered by ONE batched traversal
// (SliceAddrs on the underlying slicer), parallelized internally by the
// backend's work-stealing scheduler across the engine's workers. One
// shared traversal beats splitting the batch across goroutines — split
// chunks each re-walk the subgraph the criteria share, which is most of
// the work. Results are positionally aligned with addrs.
func (e *QueryEngine) SliceAddrs(addrs []int64) ([]*Slice, error) {
	var start time.Time
	if e.s.rec.queryObserved() {
		start = time.Now()
	}
	outs := make([]*Slice, len(addrs))
	var missSet = make(map[int64][]int) // addr -> positions in addrs
	var hits int64
	for i, a := range addrs {
		if sl, ok := e.lookup(a); ok {
			outs[i] = sl
			hits++
			e.logHit(a, sl, querylog.KindBatch, len(addrs), start)
			continue
		}
		missSet[a] = append(missSet[a], i)
	}
	e.tally(hits, int64(len(missSet)))
	if len(missSet) == 0 {
		return outs, nil
	}
	miss := make([]int64, 0, len(missSet))
	for a := range missSet {
		miss = append(miss, a)
	}
	// Deterministic chunking: map iteration order must not decide which
	// criteria share a 64-bit mask chunk.
	sort.Slice(miss, func(i, j int) bool { return miss[i] < miss[j] })

	if sw, ok := e.s.impl.(interface{ SetWorkers(int) }); ok {
		sw.SetWorkers(e.workers)
	}
	slices, err := e.s.SliceAddrs(miss)
	if err != nil {
		return nil, err
	}
	for k, sl := range slices {
		e.insert(miss[k], sl)
		for _, pos := range missSet[miss[k]] {
			outs[pos] = sl
		}
	}
	return outs, nil
}
