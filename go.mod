module dynslice

go 1.22
