package slicer_test

import (
	"os"
	"path/filepath"
	"testing"

	slicer "dynslice"
	"dynslice/internal/slicing/opt"
)

const facadeSrc = `
var out = 0;
var side = 0;

func helper(v) {
	side = side + 1;
	return v * 3;
}

func main() {
	var i = 0;
	while (i < 8) {
		out = out + helper(i);
		i = i + 1;
	}
	print(out);
}`

func record(t *testing.T, src string, input ...int64) *slicer.Recording {
	t.Helper()
	p, err := slicer.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.Record(slicer.RunOptions{Input: input})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rec.Close)
	return rec
}

func TestFacadeEndToEnd(t *testing.T) {
	rec := record(t, facadeSrc)
	if len(rec.Output) != 1 || rec.Output[0] != 84 {
		t.Fatalf("output = %v, want [84]", rec.Output)
	}
	var ref *slicer.Slice
	for _, s := range []*slicer.Slicer{rec.OPT(), rec.FP(), rec.LP()} {
		sl, err := s.SliceVar("out")
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if sl.Stmts == 0 || len(sl.Lines) == 0 {
			t.Fatalf("%s: empty slice", s.Name())
		}
		if ref == nil {
			ref = sl
		} else if !sl.Raw().Equal(ref.Raw()) {
			t.Fatalf("%s disagrees with first slicer", s.Name())
		}
		// side is incremented by helper but never flows into out.
		if sl.HasLine(6) {
			t.Fatalf("%s: side-effect line must not be in slice of out", s.Name())
		}
	}
	st := rec.Stats()
	if st.OPTLabelPairs >= st.FPLabelPairs {
		t.Errorf("OPT labels (%d) not smaller than FP labels (%d)", st.OPTLabelPairs, st.FPLabelPairs)
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := slicer.Compile(`func nope() {}`); err == nil {
		t.Fatal("expected compile error for missing main")
	}
	rec := record(t, facadeSrc)
	if _, err := rec.OPT().SliceVar("nonexistent"); err == nil {
		t.Fatal("expected error for unknown global")
	}
	if _, err := rec.OPT().SliceAddr(1 << 50); err == nil {
		t.Fatal("expected error for undefined address")
	}
}

func TestFacadeCustomOptConfig(t *testing.T) {
	// A paper-strict configuration (no adaptive extension) must still
	// produce correct slices.
	cfg := opt.Stage(6)
	cfg.Shortcuts = true
	p, err := slicer.Compile(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.Record(slicer.RunOptions{OptConfig: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	a, err := rec.OPT().SliceVar("out")
	if err != nil {
		t.Fatal(err)
	}
	b, err := rec.FP().SliceVar("out")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Raw().Equal(b.Raw()) {
		t.Fatal("paper-strict OPT disagrees with FP")
	}
}

func TestFacadeDumpIR(t *testing.T) {
	p, err := slicer.Compile(`func main() { print(1 + 2); }`)
	if err != nil {
		t.Fatal(err)
	}
	if out := p.DumpIR(); len(out) == 0 {
		t.Fatal("empty IR dump")
	}
}

func TestRecordingCloseRemovesArtifacts(t *testing.T) {
	p, err := slicer.Compile(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.Record(slicer.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := rec.TracePath()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("trace file missing after Record: %v", err)
	}
	rec.Close()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("trace file survived Close: %v", err)
	}
	if _, err := os.Stat(filepath.Dir(path)); !os.IsNotExist(err) {
		t.Fatalf("temp dir survived Close: %v", err)
	}
	rec.Close() // second Close must be a no-op, not a panic or re-remove
}

func TestRecordingCloseKeepsCallerDir(t *testing.T) {
	p, err := slicer.Compile(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	rec, err := p.Record(slicer.RunOptions{TraceDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rec.Close()
	if _, err := os.Stat(filepath.Join(dir, "run.trace")); !os.IsNotExist(err) {
		t.Fatalf("trace file survived Close in caller dir: %v", err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("Close removed the caller-supplied directory: %v", err)
	}
}

func TestRecordFailureLeavesNothing(t *testing.T) {
	p, err := slicer.Compile(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}

	// Failure after the cleanup handler is armed: TraceDir names a regular
	// file, so creating run.trace under it fails partway through Record.
	dir := t.TempDir()
	notADir := filepath.Join(dir, "occupied")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Record(slicer.RunOptions{TraceDir: notADir}); err == nil {
		t.Fatal("Record with a file as TraceDir must fail")
	}
	if _, err := os.Stat(notADir); err != nil {
		t.Fatalf("error-path cleanup removed the caller's file: %v", err)
	}

	// Failure before any artifact exists: the aborted run must not leave a
	// trace file in the caller's directory.
	if _, err := p.Record(slicer.RunOptions{TraceDir: dir, MaxSteps: 1}); err == nil {
		t.Fatal("Record with MaxSteps=1 must fail")
	}
	if _, err := os.Stat(filepath.Join(dir, "run.trace")); !os.IsNotExist(err) {
		t.Fatalf("failed Record left run.trace behind: %v", err)
	}
}
