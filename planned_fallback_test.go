package slicer

import (
	"strings"
	"testing"

	"dynslice/internal/slicing/plan"
	"dynslice/internal/slicing/reexec"
	"dynslice/internal/telemetry/querylog"
)

const ladderSrc = `
var acc = 0;
var spin = 0;

func bump(v) {
	return v + 1;
}

func main() {
	var i = 0;
	while (i < 40) {
		spin = bump(spin);
		acc = acc + spin;
		i = i + 1;
	}
	print(acc);
}`

func ladderRecording(t *testing.T) (*Recording, *querylog.Log) {
	t.Helper()
	p, err := Compile(ladderSrc)
	if err != nil {
		t.Fatal(err)
	}
	qlog := querylog.New(256)
	rec, err := p.Record(RunOptions{QueryLog: qlog, DeferGraphs: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rec.Close)
	return rec, qlog
}

// TestPlannedFallbackLadder breaks the planner's first choice from the
// inside — the re-execution backend is rebuilt over an empty summary
// index, so every query it sees fails with a classified summary error —
// and checks the dispatch ladder promotes the next backend: the query
// still succeeds, with the audit record showing the original plan, the
// answering backend, and the fallback cause.
func TestPlannedFallbackLadder(t *testing.T) {
	rec, qlog := ladderRecording(t)
	addr, err := rec.p.GlobalAddr("acc")
	if err != nil {
		t.Fatal(err)
	}
	want, err := rec.LP().SliceAddr(addr)
	if err != nil {
		t.Fatal(err)
	}

	// The cold-start plan must actually pick reexec, or the tampering
	// below would never be exercised.
	d := rec.PlanFor(plan.Shape{Kind: plan.KindSlice, Batch: 1})
	if d.Backend != plan.Reexec {
		t.Fatalf("cold plan chose %q, want %q (%s)", d.Backend, plan.Reexec, d.Reason)
	}

	// Tamper: an empty segment index over a non-empty trace fails
	// validation on Open with a classified summary error.
	rec.reexecS = reexec.New(rec.p.ir, nil, reexec.Options{
		Input:       rec.input,
		MaxSteps:    rec.maxSteps,
		TotalBlocks: rec.totalBlocks,
	})

	e := rec.Engine(EngineOptions{CacheSize: -1})
	sl, err := e.SliceAddr(addr)
	if err != nil {
		t.Fatalf("planned query did not survive a backend fault: %v", err)
	}
	if !sl.Raw().Equal(want.Raw()) {
		t.Fatal("fallback answer diverges from the LP baseline")
	}

	var promoted bool
	for _, r := range qlog.Recent(0) {
		if r.CacheHit || r.Err != "" || r.Addr != addr || r.Plan == "" {
			continue
		}
		promoted = true
		if r.Plan != plan.Reexec {
			t.Fatalf("audit record plans %q, want %q", r.Plan, plan.Reexec)
		}
		if r.Backend == plan.Reexec {
			t.Fatalf("broken backend %q still answered", r.Backend)
		}
		if !strings.Contains(r.PlanReason, "fallback from reexec") {
			t.Fatalf("plan reason %q does not name the fallback cause", r.PlanReason)
		}
	}
	if !promoted {
		t.Fatal("no successful planned record found in the query log")
	}
}

// TestPlannedBadCriterionTerminal: a criterion no backend can answer is
// terminal — the dispatcher must not walk the ladder retrying an
// address that every backend rejects identically.
func TestPlannedBadCriterionTerminal(t *testing.T) {
	rec, qlog := ladderRecording(t)
	e := rec.Engine(EngineOptions{CacheSize: -1})
	const bogus = int64(1) << 40
	if _, err := e.SliceAddr(bogus); err == nil {
		t.Fatal("bogus criterion did not error")
	} else if querylog.Classify(err) != "bad_criterion" {
		t.Fatalf("error not classified as bad_criterion: %v", err)
	}
	var attempts int
	for _, r := range qlog.Recent(0) {
		if r.Addr == bogus {
			attempts++
		}
	}
	if attempts > 1 {
		t.Fatalf("bad criterion retried %d times across the ladder", attempts)
	}
}

// TestPlannedNoBackend: with every backend gone the planned engine
// reports unavailability instead of panicking.
func TestPlannedNoBackend(t *testing.T) {
	rec, _ := ladderRecording(t)
	addr, err := rec.p.GlobalAddr("acc")
	if err != nil {
		t.Fatal(err)
	}
	rec.path = ""
	rec.lpS = nil
	rec.reexecS = nil
	rec.fwd = nil
	e := rec.Engine(EngineOptions{CacheSize: -1})
	if _, err := e.SliceAddr(addr); err != errNoBackend {
		t.Fatalf("err = %v, want errNoBackend", err)
	}
}
