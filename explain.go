package slicer

// Slice provenance: observed queries. ExplainAddr/ExplainVar run the
// same traversal as SliceAddr/SliceVar with an explain.Recorder
// attached, returning the slice together with a per-query traversal
// profile (nodes visited, label probes, explicit/inferred/shortcut edge
// attribution per optimization family) and the ability to reconstruct a
// dependence-path witness — the concrete chain
// criterion ← dep ← … ← stmt — for any statement in the slice. See
// docs/EXPLAIN.md.

import (
	"fmt"
	"strings"
	"time"

	"dynslice/internal/ir"
	"dynslice/internal/slicing"
	"dynslice/internal/slicing/explain"
	"dynslice/internal/telemetry/querylog"
)

// Explanation is the result of an observed slicing query: the slice, a
// traversal profile, and the recorded provenance from which witnesses
// are reconstructed.
type Explanation struct {
	Slice   *Slice
	Profile *explain.Profile

	rec  *explain.Recorder
	prog *ir.Program
}

// ExplainAddr slices on the last definition of addr with provenance
// recording. The slice is identical to SliceAddr's; the returned
// Explanation additionally carries the traversal profile and witnesses.
// Fails for algorithms that do not implement slicing.Explainer.
func (s *Slicer) ExplainAddr(addr int64) (*Explanation, error) {
	ex, ok := s.impl.(slicing.Explainer)
	if !ok {
		return nil, fmt.Errorf("slicer: %s does not support observed queries", s.name)
	}
	var id uint64
	obs := s.rec.queryObserved()
	if obs {
		id = s.rec.qlog.NextID()
	}
	qt, parent, owned := s.queryTrace(querylog.KindExplain, addr, 0)
	esp := parent.Child("exec/" + s.name)
	rec := explain.NewRecorder()
	t0 := time.Now()
	raw, stats, err := ex.SliceObserved(slicing.AddrCriterion(addr), rec)
	elapsed := time.Since(t0)
	if err != nil {
		class := querylog.Classify(err)
		esp.EndErr(class)
		if obs {
			s.logQuery(querylog.Record{
				ID: id, Start: t0, Backend: s.name, Kind: querylog.KindExplain,
				Addr: addr, Latency: elapsed, Err: class, TraceID: qt.ID(),
			})
		}
		if owned {
			qt.SetError(class)
			s.rec.finishTrace(qt)
		}
		return nil, err
	}
	if reg := s.rec.tel; reg != nil {
		reg.ObserveSpan("explain/"+s.name, elapsed)
		reg.Counter("slice.queries").Inc()
		reg.Counter("slice.explained").Inc()
		reg.Histogram("slice.size").Observe(int64(raw.Len()))
		if stats != nil {
			reg.Counter("slice.instances").Add(stats.Instances)
			reg.Counter("slice.label_probes").Add(stats.LabelProbes)
		}
	}
	prof := rec.Profile()
	prof.Elapsed = elapsed
	prof.SliceStmts = raw.Len()
	if stats != nil {
		prof.LabelProbes = stats.LabelProbes
		prof.SegScans = stats.SegScans
		prof.SegSkips = stats.SegSkips
	}
	if qt != nil {
		esp.Int("stmts", int64(raw.Len())).
			Int("nodes_visited", prof.NodesVisited).
			Int("label_probes", prof.LabelProbes).
			Int("edges_explicit", prof.Explicit).
			Int("edges_inferred", prof.Inferred).
			Int("edges_shortcut", prof.Shortcut)
		if stats != nil && (stats.SegScans != 0 || stats.SegSkips != 0) {
			esp.Int("seg_scans", stats.SegScans).
				Int("seg_skips", stats.SegSkips).
				Int("seg_bytes", stats.SegBytes)
		}
	}
	esp.End()
	qt.SetQueryID(id)
	sl := &Slice{
		Lines:   raw.Lines(s.rec.p.ir),
		Stmts:   raw.Len(),
		Time:    elapsed,
		QueryID: id,
		TraceID: qt.ID(),
		raw:     raw,
	}
	if obs {
		// The observed query's audit record folds in the traversal
		// profile's edge attribution (explicit vs inferred vs shortcut).
		s.logQuery(querylog.Record{
			ID: id, Start: t0, Backend: s.name, Kind: querylog.KindExplain,
			Addr: addr, Latency: elapsed, Stmts: sl.Stmts, Lines: len(sl.Lines),
			Instances: prof.NodesVisited, LabelProbes: prof.LabelProbes,
			Explicit: prof.Explicit, Inferred: prof.Inferred, Shortcut: prof.Shortcut,
			TraceID: qt.ID(),
		})
	}
	if owned {
		qt.SetBackend(s.name)
		s.rec.finishTrace(qt)
	}
	return &Explanation{
		Slice:   sl,
		Profile: prof,
		rec:     rec,
		prog:    s.rec.p.ir,
	}, nil
}

// ExplainVar is ExplainAddr on the last definition of a global scalar.
func (s *Slicer) ExplainVar(name string) (*Explanation, error) {
	addr, err := s.rec.p.GlobalAddr(name)
	if err != nil {
		return nil, err
	}
	return s.ExplainAddr(addr)
}

// Recorder exposes the raw per-query recorder (for validation tooling).
func (e *Explanation) Recorder() *explain.Recorder { return e.rec }

// Witness returns the dependence-path witness for a statement in the
// slice (false when the statement is not a slice member).
func (e *Explanation) Witness(id ir.StmtID) (*explain.Witness, bool) {
	if !e.Slice.raw.Has(id) {
		return nil, false
	}
	return e.rec.Witness(id)
}

// WitnessAtLine returns a witness for the first slice statement on the
// given source line (false when the line has none).
func (e *Explanation) WitnessAtLine(line int) (*explain.Witness, bool) {
	for _, id := range e.Slice.raw.Stmts() {
		if e.prog.Stmt(id).Pos.Line != line {
			continue
		}
		if w, ok := e.rec.Witness(id); ok {
			return w, true
		}
	}
	return nil, false
}

// FormatWitness renders a witness chain for terminal output, one hop per
// line from the criterion down to the target, each tagged with its
// dependence type (data/ctrl/use/shortcut) and resolution kind.
func (e *Explanation) FormatWitness(w *explain.Witness) string {
	var b strings.Builder
	tgt := e.prog.Stmt(w.Target)
	fmt.Fprintf(&b, "witness for s%d (%s %s):\n", w.Target, tgt.Pos, tgt.Op)
	if root, ok := e.rec.Root(); ok {
		rs := e.prog.Stmt(root.Stmt)
		fmt.Fprintf(&b, "  s%d@t%d (%s %s)  [criterion]\n", root.Stmt, root.TS, rs.Pos, rs.Op)
	}
	for _, h := range w.Hops {
		dep := "data"
		switch {
		case h.CD:
			dep = "ctrl"
		case h.Kind == explain.KindShortcut:
			dep = "chain"
		case h.ToUse:
			dep = "use"
		}
		ts := e.prog.Stmt(h.ToStmt)
		fmt.Fprintf(&b, "  <- %-5s %-17s s%d@t%d (%s %s)", dep, h.Kind, h.ToStmt, h.ToTS, ts.Pos, ts.Op)
		if h.ToUse {
			fmt.Fprintf(&b, " [use slot %d]", h.ToSlot)
		}
		b.WriteString("\n")
	}
	if !w.Complete {
		b.WriteString("  (incomplete: chain did not reach the criterion)\n")
	}
	return b.String()
}
