// Benchmarks regenerating the paper's evaluation, one per table and
// figure (see DESIGN.md's experiment index). Each benchmark measures the
// characteristic operation of its experiment on a representative workload
// and reports the paper's headline quantity as a custom metric. The full
// ten-workload evaluation is produced by cmd/experiments.
package slicer_test

import (
	"os"
	"testing"

	"dynslice/internal/bench"
	"dynslice/internal/sequitur"
	"dynslice/internal/slicing"
	"dynslice/internal/trace"
)

// benchWorkload picks the workload benchmarks run on (override with
// DYNSLICE_BENCH_WORKLOAD).
func benchWorkload(b *testing.B) bench.Workload {
	name := os.Getenv("DYNSLICE_BENCH_WORKLOAD")
	if name == "" {
		name = "164.gzip"
	}
	w, ok := bench.ByName(name)
	if !ok {
		b.Fatalf("unknown workload %q", name)
	}
	return w
}

func build(b *testing.B, o bench.Options) *bench.Result {
	b.Helper()
	res, err := bench.Build(benchWorkload(b), o)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(res.Close)
	return res
}

func sliceLoop(b *testing.B, s slicing.Slicer, crit []int64) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Slice(slicing.AddrCriterion(crit[i%len(crit)])); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 measures LP slicing (the "Costs" column of Table 1) and
// reports USE/SS.
func BenchmarkTable1(b *testing.B) {
	res := build(b, bench.Options{WithFP: true, WithLP: true})
	_, ss, _, err := bench.SliceAll(res.FP, res.Crit)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.USE)/ss, "USE/SS")
	sliceLoop(b, res.LP, res.Crit[:3])
}

// BenchmarkTable2 measures OPT graph construction from the trace and
// reports the size-reduction ratio.
func BenchmarkTable2(b *testing.B) {
	res := build(b, bench.Options{WithFP: true, WithOPT: true})
	b.ReportMetric(float64(res.FP.SizeBytes())/float64(res.OPT.SizeBytes()), "size-ratio")
	b.ReportMetric(100*float64(res.OPT.LabelPairs())/float64(res.FP.LabelPairs()), "labels-%")
	benchReplayOPT(b, res)
}

func benchReplayOPT(b *testing.B, res *bench.Result) {
	prof, cuts := bench.Reprofile(b, res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := bench.NewOPTGraph(res.P, prof, cuts)
		f, err := os.Open(res.TracePath)
		if err != nil {
			b.Fatal(err)
		}
		if err := trace.Replay(res.P, f, g); err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}

// BenchmarkTable3 measures OPT slicing with and without shortcut edges.
func BenchmarkTable3(b *testing.B) {
	res := build(b, bench.Options{WithOPT: true})
	b.Run("without-shortcuts", func(b *testing.B) {
		res.OPT.EnableShortcuts(false)
		sliceLoop(b, res.OPT, res.Crit)
	})
	b.Run("with-shortcuts", func(b *testing.B) {
		res.OPT.EnableShortcuts(true)
		sliceLoop(b, res.OPT, res.Crit)
	})
}

// BenchmarkTable4 measures OPT preprocessing (trace replay into the
// compacted graph).
func BenchmarkTable4(b *testing.B) {
	res := build(b, bench.Options{WithOPT: true})
	benchReplayOPT(b, res)
}

// BenchmarkTable5 compares preprocessing: LP's is trace collection only,
// OPT's adds graph construction; the ratio is reported as a metric.
func BenchmarkTable5(b *testing.B) {
	res := build(b, bench.Options{WithOPT: true, WithLP: true})
	b.ReportMetric(float64(res.TraceTime)/float64(res.TraceTime+res.OPTBuild), "LP/OPT-pre")
	benchReplayOPT(b, res)
}

// BenchmarkTable6 reports the LP max demand subgraph versus the OPT graph
// size while measuring LP queries.
func BenchmarkTable6(b *testing.B) {
	res := build(b, bench.Options{WithOPT: true, WithLP: true})
	if _, _, _, err := bench.SliceAll(res.LP, res.Crit[:5]); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.LP.MaxSubgraphEdges*24)/float64(res.OPT.SizeBytes()), "LPsub/OPT-bytes")
	sliceLoop(b, res.LP, res.Crit[:3])
}

// BenchmarkTable7 measures slicing, FP versus OPT.
func BenchmarkTable7(b *testing.B) {
	res := build(b, bench.Options{WithFP: true, WithOPT: true})
	b.Run("fp", func(b *testing.B) { sliceLoop(b, res.FP, res.Crit) })
	b.Run("opt", func(b *testing.B) { sliceLoop(b, res.OPT, res.Crit) })
}

// BenchmarkTable8 measures preprocessing, FP versus OPT (the paper found
// FP slower due to label-array growth).
func BenchmarkTable8(b *testing.B) {
	res := build(b, bench.Options{WithFP: true, WithOPT: true})
	b.ReportMetric(float64(res.FPBuild)/float64(res.OPTBuild), "FP/OPT-build")
	b.Run("fp-build", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g := bench.NewFPGraph(res.P)
			f, err := os.Open(res.TracePath)
			if err != nil {
				b.Fatal(err)
			}
			if err := trace.Replay(res.P, f, g); err != nil {
				b.Fatal(err)
			}
			f.Close()
		}
	})
	b.Run("opt-build", func(b *testing.B) { benchReplayOPT(b, res) })
}

// BenchmarkFig15 builds the graph at each cumulative optimization stage
// and reports the percentage of labels remaining.
func BenchmarkFig15(b *testing.B) {
	res := build(b, bench.Options{WithFP: true, WithStages: true})
	full := float64(res.FP.LabelPairs())
	for stage, g := range res.Stages {
		b.ReportMetric(100*float64(g.LabelPairs())/full, bench.StageName(stage)+"-%")
	}
	benchReplayOPT(b, res)
}

// BenchmarkFig16 reports the data/control label split of the compacted
// graph.
func BenchmarkFig16(b *testing.B) {
	res := build(b, bench.Options{WithFP: true, WithOPT: true})
	b.ReportMetric(100*float64(res.OPT.DataPairs())/float64(res.FP.DataPairs()), "ddg-%")
	b.ReportMetric(100*float64(res.OPT.CDPairs())/float64(res.FP.CDPairs()), "cdg-%")
	benchReplayOPT(b, res)
}

// BenchmarkFig17 measures OPT slicing on the fully built graph (the
// per-checkpoint variant is in cmd/experiments -exp 17).
func BenchmarkFig17(b *testing.B) {
	res := build(b, bench.Options{WithOPT: true})
	sliceLoop(b, res.OPT, res.Crit)
}

// BenchmarkFig18 measures a full 25-query batch per algorithm, the unit
// the cumulative-time figure plots.
func BenchmarkFig18(b *testing.B) {
	res := build(b, bench.Options{WithFP: true, WithLP: true, WithOPT: true})
	b.Run("opt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := bench.SliceAll(res.OPT, res.Crit); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := bench.SliceAll(res.FP, res.Crit); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := bench.SliceAll(res.LP, res.Crit[:5]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBuild compares graph construction: per-sink sequential trace
// replays versus one shared pipelined pass feeding FP and OPT together.
func BenchmarkBuild(b *testing.B) {
	res := build(b, bench.Options{WithFP: true, WithOPT: true})
	prof, cuts := bench.Reprofile(b, res)
	bytesPerDep := func(b *testing.B) {
		if deps := res.FP.LabelPairs() + res.OPT.LabelPairs(); deps > 0 {
			b.ReportMetric(float64(res.FP.ResidentBytes()+res.OPT.ResidentBytes())/float64(deps), "bytes/dep")
		}
	}
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		bytesPerDep(b)
		for i := 0; i < b.N; i++ {
			for _, g := range []trace.Sink{bench.NewFPGraph(res.P), bench.NewOPTGraph(res.P, prof, cuts)} {
				f, err := os.Open(res.TracePath)
				if err != nil {
					b.Fatal(err)
				}
				if err := trace.Replay(res.P, f, g); err != nil {
					b.Fatal(err)
				}
				f.Close()
			}
		}
	})
	b.Run("pipelined", func(b *testing.B) {
		b.ReportAllocs()
		bytesPerDep(b)
		for i := 0; i < b.N; i++ {
			f, err := os.Open(res.TracePath)
			if err != nil {
				b.Fatal(err)
			}
			err = trace.ParallelReplay(res.P, f, trace.PipelineConfig{},
				bench.NewFPGraph(res.P), bench.NewOPTGraph(res.P, prof, cuts))
			f.Close()
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSlice measures single-criterion OPT queries; allocation counts
// show the pooled worklist state being reused across queries.
func BenchmarkSlice(b *testing.B) {
	res := build(b, bench.Options{WithOPT: true})
	b.ReportAllocs()
	sliceLoop(b, res.OPT, res.Crit)
	// After sliceLoop's ResetTimer: ResetTimer deletes user metrics.
	if deps := res.OPT.LabelPairs(); deps > 0 {
		b.ReportMetric(float64(res.OPT.ResidentBytes())/float64(deps), "bytes/dep")
	}
}

// BenchmarkSliceAll measures the full 25-criteria batch as ONE shared
// traversal per algorithm — the batched counterpart of BenchmarkSlice.
func BenchmarkSliceAll(b *testing.B) {
	res := build(b, bench.Options{WithFP: true, WithOPT: true})
	for _, alg := range []struct {
		name        string
		s           slicing.MultiSlicer
		bytes, deps int64
	}{
		{"opt", res.OPT, res.OPT.ResidentBytes(), res.OPT.LabelPairs()},
		{"fp", res.FP, res.FP.ResidentBytes(), res.FP.LabelPairs()},
	} {
		b.Run(alg.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			if alg.deps > 0 {
				b.ReportMetric(float64(alg.bytes)/float64(alg.deps), "bytes/dep")
			}
			for i := 0; i < b.N; i++ {
				if _, _, _, err := bench.SliceBatch(alg.s, res.Crit); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSequitur measures grammar compression of the full graph's
// label stream and reports both compression factors (§4.1: the paper
// reports 9.18x for SEQUITUR vs 23.4x for OPT).
func BenchmarkSequitur(b *testing.B) {
	res := build(b, bench.Options{WithFP: true, WithOPT: true})
	stream := res.FP.DeltaStream()
	_, out, _ := sequitur.Compress(stream)
	b.ResetTimer()
	// After ResetTimer: ResetTimer deletes user metrics.
	b.ReportMetric(float64(res.FP.LabelPairs())/float64(out), "sequitur-x")
	b.ReportMetric(float64(res.FP.LabelPairs())/float64(res.OPT.LabelPairs()), "opt-x")
	for i := 0; i < b.N; i++ {
		sequitur.Compress(stream)
	}
}
