package slicer_test

import (
	"sync"
	"testing"

	slicer "dynslice"
	"dynslice/internal/telemetry"
)

const engineSrc = `
var total = 0;
var arr[24];

func triple(v) {
	return v * 3;
}

func main() {
	var i = 0;
	while (i < 24) {
		arr[i] = triple(i);
		total = total + arr[i];
		i = i + 1;
	}
	print(total);
}`

// engineAddrs returns the criterion addresses the engine tests query:
// every element of arr plus the scalar total.
func engineAddrs(t *testing.T, rec *slicer.Recording) []int64 {
	t.Helper()
	base := globalAddr(t, rec, "arr")
	addrs := make([]int64, 0, 25)
	for i := int64(0); i < 24; i++ {
		addrs = append(addrs, base+i)
	}
	return append(addrs, globalAddr(t, rec, "total"))
}

func globalAddr(t *testing.T, _ *slicer.Recording, name string) int64 {
	t.Helper()
	p, err := slicer.Compile(engineSrc)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := p.GlobalAddr(name)
	if err != nil {
		t.Fatal(err)
	}
	return addr
}

// TestSliceAddrsMatchesSequential: the batched façade API must agree with
// per-address queries on every algorithm.
func TestSliceAddrsMatchesSequential(t *testing.T) {
	rec := record(t, engineSrc)
	addrs := engineAddrs(t, rec)
	for _, s := range []*slicer.Slicer{rec.OPT(), rec.FP(), rec.LP()} {
		batched, err := s.SliceAddrs(addrs)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(batched) != len(addrs) {
			t.Fatalf("%s: got %d slices for %d addrs", s.Name(), len(batched), len(addrs))
		}
		for i, a := range addrs {
			seq, err := s.SliceAddr(a)
			if err != nil {
				t.Fatalf("%s addr %d: %v", s.Name(), a, err)
			}
			if !seq.Raw().Equal(batched[i].Raw()) {
				t.Errorf("%s addr %d: batched slice != sequential", s.Name(), a)
			}
		}
	}
	if outs, err := rec.OPT().SliceAddrs(nil); err != nil || outs != nil {
		t.Errorf("empty batch: outs=%v err=%v", outs, err)
	}
}

// TestQueryEngineCache: repeated queries must come from the LRU cache,
// and eviction must keep the cache bounded.
func TestQueryEngineCache(t *testing.T) {
	reg := telemetry.New()
	p, err := slicer.Compile(engineSrc)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.Record(slicer.RunOptions{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	addrs := engineAddrs(t, rec)

	e := rec.OPT().Engine(slicer.EngineOptions{Workers: 2, CacheSize: 4})
	a, b := addrs[0], addrs[1]
	first, err := e.SliceAddr(a)
	if err != nil {
		t.Fatal(err)
	}
	again, err := e.SliceAddr(a)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Error("second query of same addr should be the cached *Slice")
	}
	if _, err := e.SliceAddr(b); err != nil {
		t.Fatal(err)
	}
	hits, misses := e.CacheStats()
	if hits != 1 || misses != 2 {
		t.Errorf("cache stats = %d hits / %d misses, want 1/2", hits, misses)
	}
	if reg.Counter("engine.cache.hits").Value() != 1 {
		t.Errorf("telemetry hits = %d, want 1", reg.Counter("engine.cache.hits").Value())
	}

	// Query more addresses than the cache holds; the earliest entry must
	// have been evicted, so re-querying it is a miss.
	for _, addr := range addrs[2:8] {
		if _, err := e.SliceAddr(addr); err != nil {
			t.Fatal(err)
		}
	}
	_, missesBefore := e.CacheStats()
	if _, err := e.SliceAddr(a); err != nil {
		t.Fatal(err)
	}
	if _, missesAfter := e.CacheStats(); missesAfter != missesBefore+1 {
		t.Error("evicted address should miss the cache")
	}
}

// TestQueryEngineConcurrent hammers one engine from many goroutines; the
// results must match the plain sequential API (run with -race).
func TestQueryEngineConcurrent(t *testing.T) {
	rec := record(t, engineSrc)
	addrs := engineAddrs(t, rec)
	s := rec.OPT()
	want := make(map[int64]*slicer.Slice, len(addrs))
	for _, a := range addrs {
		sl, err := s.SliceAddr(a)
		if err != nil {
			t.Fatal(err)
		}
		want[a] = sl
	}
	e := s.Engine(slicer.EngineOptions{Workers: 4, CacheSize: 8})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				for _, a := range addrs {
					sl, err := e.SliceAddr(a)
					if err != nil || !sl.Raw().Equal(want[a].Raw()) {
						t.Errorf("worker %d: addr %d diverged (err=%v)", w, a, err)
						return
					}
				}
			} else {
				outs, err := e.SliceAddrs(addrs)
				if err != nil {
					t.Error(err)
					return
				}
				for i, a := range addrs {
					if !outs[i].Raw().Equal(want[a].Raw()) {
						t.Errorf("worker %d: batched addr %d diverged", w, a)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Duplicate addresses in one batch resolve to the same result.
	dup := []int64{addrs[0], addrs[1], addrs[0]}
	outs, err := e.SliceAddrs(dup)
	if err != nil {
		t.Fatal(err)
	}
	if !outs[0].Raw().Equal(outs[2].Raw()) {
		t.Error("duplicate criteria in one batch should agree")
	}
}

// TestEngineExplainConcurrent mixes observed queries with batched plain
// queries on one engine (run with -race). Explain bypasses the cache
// but inserts its slice, so a later SliceAddr for the same address must
// hit and agree.
func TestEngineExplainConcurrent(t *testing.T) {
	rec := record(t, engineSrc)
	addrs := engineAddrs(t, rec)
	s := rec.OPT()
	want := make(map[int64]*slicer.Slice, len(addrs))
	for _, a := range addrs {
		sl, err := s.SliceAddr(a)
		if err != nil {
			t.Fatal(err)
		}
		want[a] = sl
	}
	e := s.Engine(slicer.EngineOptions{Workers: 4, CacheSize: 8})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				for _, a := range addrs {
					ex, err := e.Explain(a)
					if err != nil {
						t.Errorf("worker %d: explain %d: %v", w, a, err)
						return
					}
					if !ex.Slice.Raw().Equal(want[a].Raw()) {
						t.Errorf("worker %d: explained addr %d diverged", w, a)
						return
					}
					if ex.Profile.Edges == 0 && ex.Slice.Stmts > 1 {
						t.Errorf("worker %d: addr %d: no edges recorded", w, a)
						return
					}
				}
			} else {
				outs, err := e.SliceAddrs(addrs)
				if err != nil {
					t.Error(err)
					return
				}
				for i, a := range addrs {
					if !outs[i].Raw().Equal(want[a].Raw()) {
						t.Errorf("worker %d: batched addr %d diverged", w, a)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// The explained slice is inserted: an immediately following plain
	// query for the same address must hit the cache.
	if _, err := e.Explain(addrs[0]); err != nil {
		t.Fatal(err)
	}
	hitsBefore, _ := e.CacheStats()
	if _, err := e.SliceAddr(addrs[0]); err != nil {
		t.Fatal(err)
	}
	if hitsAfter, _ := e.CacheStats(); hitsAfter <= hitsBefore {
		t.Error("slice produced by Explain was not cached")
	}
}

// TestSequentialBuildMatchesPipelined: Record's default pipelined build
// must produce the same graphs as the SequentialBuild opt-out.
func TestSequentialBuildMatchesPipelined(t *testing.T) {
	p, err := slicer.Compile(engineSrc)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := p.Record(slicer.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	seq, err := p.Record(slicer.RunOptions{SequentialBuild: true})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	addrs := engineAddrs(t, pipe)
	for _, mk := range []func(*slicer.Recording) *slicer.Slicer{
		(*slicer.Recording).FP, (*slicer.Recording).OPT,
	} {
		a, b := mk(pipe), mk(seq)
		for _, addr := range addrs {
			x, err := a.SliceAddr(addr)
			if err != nil {
				t.Fatal(err)
			}
			y, err := b.SliceAddr(addr)
			if err != nil {
				t.Fatal(err)
			}
			if !x.Raw().Equal(y.Raw()) {
				t.Errorf("%s addr %d: pipelined build != sequential build", a.Name(), addr)
			}
		}
	}
}
