// Criticality estimation — the performance application the paper's
// introduction motivates ("guiding the development of performance
// enhancing transformations based upon estimation of criticality of
// instructions"). A statement that appears in the dynamic slices of many
// observable values is critical: optimizing or hoisting it pays off
// everywhere; a statement appearing in few slices is a poor optimization
// target no matter how hot it is.
//
//	go run ./examples/criticality
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	slicer "dynslice"
)

const src = `
var norm = 0;
var dot = 0;
var maxi = 0;
var checksum = 0;

func main() {
	var a[32];
	var b[32];
	var seed = 7;
	var i = 0;
	while (i < 32) {
		seed = (seed * 1103515245 + 12345) % 2147483648;
		a[i] = seed % 100;            // feeds everything below
		seed = (seed * 1103515245 + 12345) % 2147483648;
		b[i] = seed % 100;            // feeds dot and checksum only
		i = i + 1;
	}
	i = 0;
	while (i < 32) {
		norm = norm + a[i] * a[i];
		dot = dot + a[i] * b[i];
		if (a[i] > a[maxi]) { maxi = i; }
		checksum = (checksum * 31 + b[i]) % 1000003;
		i = i + 1;
	}
	print(norm); print(dot); print(maxi); print(checksum);
}
`

func main() {
	prog, err := slicer.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := prog.Record(slicer.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer rec.Close()

	outputs := []string{"norm", "dot", "maxi", "checksum"}
	counts := map[int]int{}
	for _, name := range outputs {
		sl, err := rec.OPT().SliceVar(name)
		if err != nil {
			log.Fatal(err)
		}
		for _, ln := range sl.Lines {
			counts[ln]++
		}
	}

	type row struct {
		line, n int
	}
	var rows []row
	for ln, n := range counts {
		rows = append(rows, row{ln, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].line < rows[j].line
	})

	lines := strings.Split(src, "\n")
	fmt.Printf("criticality = number of output slices a line appears in (of %d outputs)\n\n", len(outputs))
	for _, r := range rows {
		bar := strings.Repeat("#", r.n)
		fmt.Printf("%-4s %3d | %s\n", bar, r.line, strings.TrimRight(lines[r.line-1], " \t"))
	}

	// Sanity of the analysis: the a[i] generator must outrank the b[i]
	// generator (a feeds all four outputs, b only two).
	if counts[14] <= counts[16] {
		log.Fatalf("expected a[i] generation (line 14, %d slices) to outrank b[i] (line 16, %d slices)",
			counts[14], counts[16])
	}
	fmt.Println("\nthe a[] generator outranks the b[] generator, as the dependence structure dictates")
}
