// Quickstart: compile a MiniC program, run it under the instrumenting
// interpreter, and compute a dynamic slice with the paper's OPT algorithm.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	slicer "dynslice"
)

const src = `
var result = 0;
var noise = 0;

func square(x) {
	return x * x;
}

func main() {
	var n = input();
	var i = 1;
	while (i <= n) {
		if (i % 2 == 0) {
			result = result + square(i);
		} else {
			noise = noise + i;     // never influences result
		}
		i = i + 1;
	}
	print(result);
	print(noise);
}
`

func main() {
	prog, err := slicer.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := prog.Record(slicer.RunOptions{Input: []int64{10}})
	if err != nil {
		log.Fatal(err)
	}
	defer rec.Close()
	fmt.Printf("program output: %v (executed %d statements)\n\n", rec.Output, rec.Steps)

	// Slice on the final value of `result` with each algorithm; all three
	// agree, but OPT answers from a graph a fraction of FP's size.
	for _, s := range []*slicer.Slicer{rec.OPT(), rec.FP(), rec.LP()} {
		sl, err := s.SliceVar("result")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3s slice of result: %2d statements, lines %v  (%.3f ms)\n",
			s.Name(), sl.Stmts, sl.Lines, float64(sl.Time.Microseconds())/1000)
	}

	st := rec.Stats()
	fmt.Printf("\ngraph sizes: FP %d labels vs OPT %d labels (%.1f%%), %d static edges, %d specialized paths\n",
		st.FPLabelPairs, st.OPTLabelPairs,
		100*float64(st.OPTLabelPairs)/float64(st.FPLabelPairs),
		st.StaticEdges, st.PathNodes)

	// The `noise` accumulation never flows into result: its line must be
	// absent from the slice.
	sl, _ := rec.OPT().SliceVar("result")
	if sl.HasLine(17) {
		log.Fatal("unexpected: noise line in slice of result")
	}
	fmt.Println("\nas expected, the noise-accumulating line is NOT in the slice of result")
}
