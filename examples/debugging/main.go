// Debugging with dynamic slices — the application slicing was invented
// for. A statistics routine computes a windowed average but one branch
// uses a wrong accumulator. The slice of the faulty output pinpoints the
// handful of lines the wrong value can possibly depend on, excluding the
// majority of the program.
//
//	go run ./examples/debugging
package main

import (
	"fmt"
	"log"
	"strings"

	slicer "dynslice"
)

const src = `
var sum = 0;
var count = 0;
var maxv = 0 - 1000000;
var minv = 1000000;
var avg = 0;

func clamp(v, lo, hi) {
	if (v < lo) { return lo; }
	if (v > hi) { return hi; }
	return v;
}

func main() {
	var n = input();
	var i = 0;
	while (i < n) {
		var v = input();
		v = clamp(v, 0 - 100, 100);
		if (v > maxv) { maxv = v; }
		if (v < minv) { minv = v; }
		if (v >= 0) {
			sum = sum + v;
		} else {
			sum = sum + count;   // BUG: should be sum + v
		}
		count = count + 1;
		i = i + 1;
	}
	if (count > 0) {
		avg = sum / count;
	}
	print(avg);
	print(maxv);
	print(minv);
}
`

func main() {
	prog, err := slicer.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	// Inputs include a negative value, so the buggy branch executes.
	rec, err := prog.Record(slicer.RunOptions{Input: []int64{5, 10, -4, 30, 7, -1}})
	if err != nil {
		log.Fatal(err)
	}
	defer rec.Close()

	fmt.Printf("observed: avg=%d maxv=%d minv=%d   (avg is wrong: -4 and -1 were mangled)\n\n",
		rec.Output[0], rec.Output[1], rec.Output[2])

	sl, err := rec.OPT().SliceVar("avg")
	if err != nil {
		log.Fatal(err)
	}
	lines := strings.Split(src, "\n")
	fmt.Printf("dynamic slice of avg: %d source lines out of %d\n", len(sl.Lines), len(lines))
	for _, ln := range sl.Lines {
		marker := "  "
		if strings.Contains(lines[ln-1], "BUG") {
			marker = "=>"
		}
		fmt.Printf("%s %3d | %s\n", marker, ln, lines[ln-1])
	}

	// The max/min tracking lines cannot affect avg and must be excluded —
	// that exclusion is what makes the slice useful for fault localization.
	for _, ln := range sl.Lines {
		if strings.Contains(lines[ln-1], "maxv = v") || strings.Contains(lines[ln-1], "minv = v") {
			log.Fatal("slice unexpectedly contains max/min tracking")
		}
	}
	fmt.Println("\nmax/min tracking is correctly excluded; the buggy accumulator line is in the slice")
}
