// Dependence-based testing — one of the applications the paper motivates
// ("carrying out dependence based software testing"). For each program
// output, the dynamic slice tells which statements influenced it in this
// run; a statement appearing in no output's slice did not contribute to
// any observable behaviour under this test input, flagging weak coverage.
//
//	go run ./examples/testcov
package main

import (
	"fmt"
	"log"
	"strings"

	slicer "dynslice"
)

const src = `
var checksum = 0;
var parity = 0;
var alarm = 0;

func step(v) {
	checksum = (checksum * 31 + v) % 100003;
	parity = (parity + v) % 2;
	return v;
}

func main() {
	var n = input();
	var i = 0;
	while (i < n) {
		var v = input();
		step(v);
		if (v > 90) {
			alarm = alarm + 1;   // only exercised by inputs > 90
		}
		i = i + 1;
	}
	print(checksum);
	print(parity);
	print(alarm);
}
`

func run(input []int64) {
	prog, err := slicer.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := prog.Record(slicer.RunOptions{Input: input})
	if err != nil {
		log.Fatal(err)
	}
	defer rec.Close()

	outputs := []string{"checksum", "parity", "alarm"}
	influencing := map[int]bool{}
	fmt.Printf("test input %v -> outputs %v\n", input[1:], rec.Output)
	for _, name := range outputs {
		sl, err := rec.OPT().SliceVar(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s influenced by %2d lines: %v\n", name, len(sl.Lines), sl.Lines)
		for _, ln := range sl.Lines {
			influencing[ln] = true
		}
	}
	// Lines holding executable statements that influenced no output.
	lines := strings.Split(src, "\n")
	var uncovered []int
	for i, text := range lines {
		t := strings.TrimSpace(text)
		if t == "" || strings.HasPrefix(t, "//") || t == "}" || strings.HasPrefix(t, "func") {
			continue
		}
		if !influencing[i+1] {
			uncovered = append(uncovered, i+1)
		}
	}
	if len(uncovered) == 0 {
		fmt.Println("  every executable line influenced some output — dependence coverage achieved")
	} else {
		fmt.Printf("  lines influencing NO output under this input (coverage gap): %v\n", uncovered)
		for _, ln := range uncovered {
			fmt.Printf("    %3d | %s\n", ln, lines[ln-1])
		}
	}
	fmt.Println()
}

func main() {
	// A weak test input: no value exceeds 90, so the alarm branch never
	// fires and its statement influences nothing.
	run([]int64{4, 10, 20, 30, 40})
	// A stronger input exercises the alarm path too.
	run([]int64{4, 10, 95, 30, 99})
}
