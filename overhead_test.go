package slicer_test

import (
	"testing"
	"time"

	slicer "dynslice"
	"dynslice/internal/telemetry"
)

// overheadSrc is large enough that one pipeline run (record + slices)
// takes a stable, measurable amount of time.
const overheadSrc = `
var acc = 0;
var arr[64];

func mix(v) {
	return (v * 7 + 3) % 256;
}

func main() {
	var i = 0;
	while (i < 64) {
		arr[i] = mix(i);
		i = i + 1;
	}
	var r = 0;
	while (r < 24) {
		i = 0;
		while (i < 64) {
			if (arr[i] % 3 == 0) {
				acc = acc + arr[i];
			} else {
				arr[i] = mix(arr[i] + r);
			}
			i = i + 1;
		}
		r = r + 1;
	}
	print(acc);
}`

// pipeline runs the full instrumented path: record (profile + traced
// interpretation + FP/OPT graph builds) and a slice per algorithm —
// one direct and one through the QueryEngine, so the measured region
// includes the query audit hooks (querylog/stats nil checks) on their
// disabled path. Every slice routes through the observed traversal with
// a nil explain.Recorder, so the ≤5% guard below also covers the
// provenance hooks' disabled path.
func pipeline(tb testing.TB, p *slicer.Program, reg *telemetry.Registry) {
	rec, err := p.Record(slicer.RunOptions{Telemetry: reg})
	if err != nil {
		tb.Fatal(err)
	}
	defer rec.Close()
	for _, s := range []*slicer.Slicer{rec.OPT(), rec.FP()} {
		if _, err := s.SliceVar("acc"); err != nil {
			tb.Fatal(err)
		}
		e := s.Engine(slicer.EngineOptions{})
		for i := 0; i < 2; i++ { // second query is a cache hit (logHit path)
			if _, err := e.SliceVar("acc"); err != nil {
				tb.Fatal(err)
			}
		}
	}
}

// BenchmarkTelemetryOverhead compares the full pipeline with no registry
// attached ("off"), with a registry attached but switched off
// ("disabled"), and with live metrics ("enabled"). The "off" and
// "disabled" numbers should be indistinguishable: every hot-path
// instrument is either a nil receiver or a single guarded atomic load.
func BenchmarkTelemetryOverhead(b *testing.B) {
	p, err := slicer.Compile(overheadSrc)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pipeline(b, p, nil)
		}
	})
	b.Run("disabled", func(b *testing.B) {
		reg := telemetry.New()
		reg.SetEnabled(false)
		for i := 0; i < b.N; i++ {
			pipeline(b, p, reg)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		reg := telemetry.New()
		for i := 0; i < b.N; i++ {
			pipeline(b, p, reg)
		}
	})
}

// BenchmarkObserverOverhead compares plain and observed queries on one
// frozen recording, per algorithm. The delta is the cost of live
// provenance recording (predecessor maps, per-kind counters, witness
// state); plain queries pay only a nil-receiver check per hook.
func BenchmarkObserverOverhead(b *testing.B) {
	p, err := slicer.Compile(overheadSrc)
	if err != nil {
		b.Fatal(err)
	}
	rec, err := p.Record(slicer.RunOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer rec.Close()
	for _, s := range []*slicer.Slicer{rec.OPT(), rec.FP()} {
		b.Run(s.Name()+"/plain", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.SliceVar("acc"); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(s.Name()+"/observed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.ExplainVar("acc"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// measure interleaves rounds of the two configurations and returns each
// one's best round. Interleaving cancels slow drift (thermal, GC pacing);
// the minimum (not mean) filters scheduler noise, which only ever slows a
// round down.
func measure(tb testing.TB, p *slicer.Program, a, b *telemetry.Registry, rounds, iters int) (time.Duration, time.Duration) {
	bestA := time.Duration(1<<63 - 1)
	bestB := bestA
	timeOne := func(reg *telemetry.Registry) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			pipeline(tb, p, reg)
		}
		return time.Since(start)
	}
	for r := 0; r < rounds; r++ {
		if d := timeOne(a); d < bestA {
			bestA = d
		}
		if d := timeOne(b); d < bestB {
			bestB = d
		}
	}
	return bestA, bestB
}

// TestOverhead is the CI guard for the "telemetry off must be near-free"
// contract: a disabled registry may cost at most 5% over no registry.
func TestOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	p, err := slicer.Compile(overheadSrc)
	if err != nil {
		t.Fatal(err)
	}
	disabled := telemetry.New()
	disabled.SetEnabled(false)

	// Warm caches and the page allocator before timing.
	pipeline(t, p, nil)
	pipeline(t, p, disabled)

	const rounds, iters, limit = 7, 8, 1.05
	for attempt := 0; ; attempt++ {
		off, dis := measure(t, p, nil, disabled, rounds, iters)
		ratio := float64(dis) / float64(off)
		t.Logf("off=%v disabled=%v ratio=%.3f", off, dis, ratio)
		if ratio <= limit {
			return
		}
		if attempt == 2 {
			t.Fatalf("disabled telemetry costs %.1f%% (limit %d%%)", (ratio-1)*100, int(limit*100-100))
		}
	}
}
