package slicer

import (
	"strings"
	"testing"

	"dynslice/internal/slicing/plan"
	"dynslice/internal/slicing/reexec"
	"dynslice/internal/telemetry/qtrace"
	"dynslice/internal/telemetry/querylog"
)

// tracedRecording is ladderRecording with a query tracer attached.
func tracedRecording(t *testing.T, pol qtrace.Policy) (*Recording, *querylog.Log, *qtrace.Tracer) {
	t.Helper()
	p, err := Compile(ladderSrc)
	if err != nil {
		t.Fatal(err)
	}
	qlog := querylog.New(256)
	qtr := qtrace.New(64, pol)
	rec, err := p.Record(RunOptions{QueryLog: qlog, QueryTrace: qtr, DeferGraphs: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rec.Close)
	return rec, qlog, qtr
}

// findSpan returns the first span with the given name (nil when absent).
func findSpan(e qtrace.Export, name string) *qtrace.SpanExport {
	for i := range e.Spans {
		if e.Spans[i].Name == name {
			return &e.Spans[i]
		}
	}
	return nil
}

// TestQtraceFallbackLadder is the acceptance scenario: a forced planner
// fallback (the planned reexec backend rebuilt over an empty summary
// index, so it fails every query with a classified error) must yield
// exactly one retained trace whose span tree shows the planner decision,
// the failed rung with its error class, and the winning backend.
func TestQtraceFallbackLadder(t *testing.T) {
	rec, qlog, qtr := tracedRecording(t, qtrace.Policy{OnPlanDiverge: true})
	addr, err := rec.p.GlobalAddr("acc")
	if err != nil {
		t.Fatal(err)
	}

	d := rec.PlanFor(plan.Shape{Kind: plan.KindSlice, Batch: 1})
	if d.Backend != plan.Reexec {
		t.Fatalf("cold plan chose %q, want %q (%s)", d.Backend, plan.Reexec, d.Reason)
	}

	rec.reexecS = reexec.New(rec.p.ir, nil, reexec.Options{
		Input:       rec.input,
		MaxSteps:    rec.maxSteps,
		TotalBlocks: rec.totalBlocks,
	})

	e := rec.Engine(EngineOptions{CacheSize: -1})
	sl, err := e.SliceAddr(addr)
	if err != nil {
		t.Fatalf("planned query did not survive the backend fault: %v", err)
	}
	if sl.TraceID == 0 {
		t.Fatal("slice carries no trace id")
	}

	retained := qtr.Recent(0)
	if len(retained) != 1 {
		t.Fatalf("retained %d traces, want exactly 1 (the demoted query)", len(retained))
	}
	tr := qtr.Get(sl.TraceID)
	if tr == nil {
		t.Fatalf("trace %s not retained", sl.TraceID)
	}
	if got := tr.Reason(); got != qtrace.ReasonPlanDiverge {
		t.Fatalf("retain reason = %q, want %q", got, qtrace.ReasonPlanDiverge)
	}

	ex := tr.Export()
	if ex.Plan != plan.Reexec {
		t.Fatalf("trace plan = %q, want %q", ex.Plan, plan.Reexec)
	}
	if ex.Backend == "" || ex.Backend == plan.Reexec {
		t.Fatalf("trace backend = %q, want a promoted backend", ex.Backend)
	}
	if ex.Err != "" {
		t.Fatalf("successful query's trace carries error class %q", ex.Err)
	}

	// The span tree: root query span, the planner decision with its
	// chosen backend, the failed rung tagged with the demotion's error
	// class, and a clean attempt on the winner.
	if sp := findSpan(ex, "query/"+querylog.KindSlice); sp == nil {
		t.Fatal("no root query span")
	}
	psp := findSpan(ex, "plan")
	if psp == nil {
		t.Fatal("no planner decision span")
	}
	if psp.Attrs["backend"] != plan.Reexec {
		t.Fatalf("plan span backend attr = %v, want %q", psp.Attrs["backend"], plan.Reexec)
	}
	if _, ok := psp.Attrs["cost/"+plan.Reexec].(string); !ok {
		t.Fatalf("plan span has no cost attr for %s: %v", plan.Reexec, psp.Attrs)
	}
	failed := findSpan(ex, "attempt/"+plan.Reexec)
	if failed == nil {
		t.Fatal("no attempt span for the failed rung")
	}
	if failed.Err == "" || failed.Err == "bad_criterion" {
		t.Fatalf("failed rung's error class = %q, want a backend-fault class", failed.Err)
	}
	winner := findSpan(ex, "attempt/"+ex.Backend)
	if winner == nil {
		t.Fatalf("no attempt span for the winning backend %s", ex.Backend)
	}
	if winner.Err != "" {
		t.Fatalf("winning rung carries error class %q", winner.Err)
	}
	if findSpan(ex, "exec/"+ex.Backend) == nil {
		t.Fatalf("no exec span under the winning attempt")
	}

	// The audit record links back to the same trace.
	var linked bool
	for _, r := range qlog.Recent(0) {
		if r.Addr == addr && r.Err == "" && r.Plan == plan.Reexec {
			linked = true
			if r.TraceID != sl.TraceID {
				t.Fatalf("record trace_id %s != slice trace id %s", r.TraceID, sl.TraceID)
			}
			if !strings.Contains(r.PlanReason, "fallback from reexec") {
				t.Fatalf("plan reason %q does not name the fallback", r.PlanReason)
			}
		}
	}
	if !linked {
		t.Fatal("no successful audit record found for the demoted query")
	}
}

// TestQtraceDirectQuery: a query through the façade (no engine) mints
// its own trace, tags the exec span with traversal stats, and stamps the
// trace ID on both the Slice and the audit record.
func TestQtraceDirectQuery(t *testing.T) {
	rec, qlog, qtr := tracedRecording(t, qtrace.Policy{SampleN: 1})
	addr, err := rec.p.GlobalAddr("acc")
	if err != nil {
		t.Fatal(err)
	}
	sl, err := rec.LP().SliceAddr(addr)
	if err != nil {
		t.Fatal(err)
	}
	if sl.TraceID == 0 {
		t.Fatal("slice carries no trace id")
	}
	tr := qtr.Get(sl.TraceID)
	if tr == nil {
		t.Fatalf("trace %s not retained under 1-in-1 sampling", sl.TraceID)
	}
	if got := tr.Backend(); got != "LP" {
		t.Fatalf("trace backend = %q, want LP", got)
	}
	ex := tr.Export()
	esp := findSpan(ex, "exec/LP")
	if esp == nil {
		t.Fatal("no exec span")
	}
	for _, key := range []string{"stmts", "seg_scans", "seg_bytes"} {
		if _, ok := esp.Attrs[key]; !ok {
			t.Fatalf("exec span missing %q attr: %v", key, esp.Attrs)
		}
	}
	var linked bool
	for _, r := range qlog.Recent(0) {
		if r.TraceID == sl.TraceID {
			linked = true
		}
	}
	if !linked {
		t.Fatal("no audit record carries the trace id")
	}
}

// TestQtraceCacheHitAndBatch: engine cache hits are traced with the
// cache-hit flag and the serving backend; batch queries share one trace
// across all their audit records.
func TestQtraceCacheHitAndBatch(t *testing.T) {
	rec, qlog, qtr := tracedRecording(t, qtrace.Policy{SampleN: 1})
	addr, err := rec.p.GlobalAddr("acc")
	if err != nil {
		t.Fatal(err)
	}
	spin, err := rec.p.GlobalAddr("spin")
	if err != nil {
		t.Fatal(err)
	}
	e := rec.Engine(EngineOptions{CacheSize: 8})
	if _, err := e.SliceAddr(addr); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SliceAddr(addr); err != nil {
		t.Fatal(err)
	}
	// The cached *Slice keeps its original trace id; the hit's own trace
	// is the most recent ring entry, linked from the audit record.
	recent := qtr.Recent(1)
	if len(recent) != 1 {
		t.Fatal("cache-hit trace not retained")
	}
	ex := recent[0].Export()
	if !ex.Hit {
		t.Fatal("cache-hit trace not flagged as a hit")
	}
	var hitLinked bool
	for _, r := range qlog.Recent(0) {
		if r.CacheHit && r.TraceID == ex.TraceID {
			hitLinked = true
		}
	}
	if !hitLinked {
		t.Fatal("no cache-hit audit record carries the hit's trace id")
	}

	// Batch on a cache-free engine so both criteria are computed fresh
	// and share the batch's single trace.
	outs, err := rec.Engine(EngineOptions{CacheSize: -1}).SliceAddrs([]int64{addr, spin})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].TraceID == 0 || outs[0].TraceID != outs[1].TraceID {
		t.Fatalf("batch slices carry trace ids %s and %s, want one shared id",
			outs[0].TraceID, outs[1].TraceID)
	}
	var batched int
	for _, r := range qlog.Recent(0) {
		if r.Kind == querylog.KindBatch && r.TraceID == outs[0].TraceID {
			batched++
		}
	}
	if batched != 2 {
		t.Fatalf("%d batch records share the trace id, want 2", batched)
	}
}

// TestQtraceRecordTrace: the record/replay pipeline itself is traced —
// snapshot load, profile run, interpretation — and a snapshot cache miss
// retains the trace under OnCacheMiss.
func TestQtraceRecordTrace(t *testing.T) {
	p, err := Compile(ladderSrc)
	if err != nil {
		t.Fatal(err)
	}
	qtr := qtrace.New(8, qtrace.Policy{OnCacheMiss: true})
	snap := SnapshotOptions{Dir: t.TempDir(), Read: true, Write: true}
	rec, err := p.Record(RunOptions{QueryTrace: qtr, Snapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	rec.Close()
	recent := qtr.Recent(0)
	if len(recent) != 1 {
		t.Fatalf("retained %d traces, want 1 (the cache-missed record)", len(recent))
	}
	ex := recent[0].Export()
	if ex.Kind != "record" {
		t.Fatalf("trace kind = %q, want record", ex.Kind)
	}
	lsp := findSpan(ex, "snapshot-load")
	if lsp == nil {
		t.Fatal("no snapshot-load span")
	}
	if lsp.Attrs["result"] != "miss" {
		t.Fatalf("snapshot-load result = %v, want miss", lsp.Attrs["result"])
	}
	if findSpan(ex, "profile") == nil || findSpan(ex, "interp") == nil {
		t.Fatal("record trace missing profile/interp spans")
	}

	// A warm cache turns the next record into a hit: not retained.
	rec2, err := p.Record(RunOptions{QueryTrace: qtr, Snapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	rec2.Close()
	if got := len(qtr.Recent(0)); got != 1 {
		t.Fatalf("warm record retained a trace (ring now %d), want still 1", got)
	}
}
