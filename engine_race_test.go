package slicer_test

import (
	"sync"
	"testing"

	slicer "dynslice"
)

// TestEngineConcurrentHammer drives one frozen recording from many
// goroutines at once — single queries, batched queries, and direct
// Slicer batches, across all three algorithms — with a deliberately
// tiny LRU so insertion and eviction churn constantly. Every answer
// must equal the sequential baseline. The test exists to run under
// `make test-race`: it covers the engine's cache locking, its worker
// fan-out, and the graphs' memoized label resolution, none of which
// the sequential tests stress concurrently.
func TestEngineConcurrentHammer(t *testing.T) {
	rec := record(t, engineSrc)
	addrs := engineAddrs(t, rec)

	for _, s := range []*slicer.Slicer{rec.OPT(), rec.FP(), rec.LP()} {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			// Sequential baseline, one query at a time, before any
			// concurrent traffic touches the graph.
			want := make(map[int64]*slicer.Slice, len(addrs))
			for _, a := range addrs {
				sl, err := s.SliceAddr(a)
				if err != nil {
					t.Fatal(err)
				}
				want[a] = sl
			}

			// CacheSize 4 over 25 criteria: nearly every batch both hits
			// and evicts; Workers 8 keeps several batched traversals of
			// the same frozen graph in flight.
			e := s.Engine(slicer.EngineOptions{Workers: 8, CacheSize: 4})

			const goroutines = 16
			const rounds = 6
			var wg sync.WaitGroup
			errCh := make(chan error, goroutines)
			for gi := 0; gi < goroutines; gi++ {
				wg.Add(1)
				go func(gi int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						switch (gi + r) % 3 {
						case 0: // single queries, rotated start point
							for k := range addrs {
								a := addrs[(k+gi)%len(addrs)]
								sl, err := e.SliceAddr(a)
								if err != nil {
									errCh <- err
									return
								}
								if !sl.Raw().Equal(want[a].Raw()) {
									t.Errorf("%s: concurrent SliceAddr(%d) diverged from baseline", s.Name(), a)
									return
								}
							}
						case 1: // engine batch, with duplicates
							batch := append(append([]int64{}, addrs...), addrs[gi%len(addrs)])
							sls, err := e.SliceAddrs(batch)
							if err != nil {
								errCh <- err
								return
							}
							for k, sl := range sls {
								if !sl.Raw().Equal(want[batch[k]].Raw()) {
									t.Errorf("%s: concurrent SliceAddrs[%d] diverged from baseline", s.Name(), k)
									return
								}
							}
						case 2: // direct batched traversal, bypassing the cache
							sls, err := s.SliceAddrs(addrs)
							if err != nil {
								errCh <- err
								return
							}
							for k, sl := range sls {
								if !sl.Raw().Equal(want[addrs[k]].Raw()) {
									t.Errorf("%s: concurrent Slicer.SliceAddrs[%d] diverged from baseline", s.Name(), k)
									return
								}
							}
						}
					}
				}(gi)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}

			hits, misses := e.CacheStats()
			if hits == 0 || misses == 0 {
				t.Errorf("%s: cache not exercised under contention (hits=%d misses=%d)", s.Name(), hits, misses)
			}
		})
	}
}
