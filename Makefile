GO ?= go

.PHONY: ci build vet fmt test test-race fuzz-smoke fuzz-native overhead bench bench-parallel bench-mem bench-explain experiments

ci: build vet fmt test test-race fuzz-smoke bench-mem bench-explain overhead

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l prints nonconforming files; fail if it prints anything.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Race detection over the concurrent paths: the pipelined builders, the
# batched slicers, the QueryEngine, and the root façade.
test-race:
	$(GO) test -race . ./internal/slicing/... ./internal/trace/...

# Differential smoke gate: 500 generated programs, every sampled
# criterion sliced through the full configuration matrix and compared
# against the brute-force oracle. Deterministic: any failure prints the
# exact replay command (see docs/TESTING.md). -witness additionally
# replays each OPT query observed and checks every dependence-path
# witness hop against the oracle's dynamic dependences (docs/EXPLAIN.md).
fuzz-smoke:
	$(GO) run ./cmd/fuzzgen -seed 1 -n 500 -witness

# Coverage-guided native fuzzing, a short burst per target. Unbounded
# sessions: go test -fuzz FuzzX -fuzztime 10m <pkg>.
fuzz-native:
	$(GO) test -fuzz FuzzSlicerEquivalence -fuzztime 10s ./internal/fuzzgen/
	$(GO) test -fuzz FuzzGeneratedEquivalence -fuzztime 10s ./internal/fuzzgen/
	$(GO) test -fuzz FuzzTraceReader -fuzztime 10s ./internal/trace/

# Guard: a disabled telemetry registry may cost at most 5% over none.
overhead:
	$(GO) test -run TestOverhead -bench BenchmarkTelemetryOverhead -benchtime 5x .

bench:
	$(GO) test -bench . -benchmem .

# Parallel-engine speedups: pipelined builds, batched + concurrent
# slicing vs the sequential GOMAXPROCS=1 baseline -> BENCH_parallel.json.
bench-parallel:
	$(GO) run ./cmd/experiments -exp parallel

# Memory-layout comparison: delta-varint label blocks vs the flat
# -compact=false layout -> BENCH_memory.json. RunMemory fails the target
# if OPT's compact resident label bytes exceed 0.5x the uncompacted
# baseline or any slice differs between layouts.
bench-mem:
	$(GO) run ./cmd/experiments -exp memory

# Observed-query breakdown: every criterion explained on FP/OPT/LP,
# explicit-vs-inferred edge attribution -> BENCH_explain.json. RunExplain
# fails the target if any workload's OPT traversal reports zero inferred
# edges (the optimizations would not be exercised).
bench-explain:
	$(GO) run ./cmd/experiments -exp explain

experiments:
	$(GO) run ./cmd/experiments -exp all
