GO ?= go

.PHONY: ci build vet fmt test test-race fuzz-smoke fuzz-native overhead bench bench-parallel bench-mem bench-explain bench-queries bench-snapshot bench-planner bench-qtrace bench-baseline bench-check lint-metrics experiments

ci: build vet fmt lint-metrics test test-race fuzz-smoke bench-mem bench-explain bench-queries bench-snapshot bench-planner bench-qtrace overhead bench-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l prints nonconforming files; fail if it prints anything.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Race detection over the concurrent paths: the pipelined builders, the
# batched slicers, the QueryEngine, the root façade, and the query
# flight recorder.
test-race:
	$(GO) test -race . ./internal/slicing/... ./internal/trace/... ./internal/telemetry/...

# Differential smoke gate: 500 generated programs, every sampled
# criterion sliced through the full configuration matrix and compared
# against the brute-force oracle. Deterministic: any failure prints the
# exact replay command (see docs/TESTING.md). -witness additionally
# replays each OPT query observed and checks every dependence-path
# witness hop against the oracle's dynamic dependences (docs/EXPLAIN.md).
fuzz-smoke:
	$(GO) run ./cmd/fuzzgen -seed 1 -n 500 -witness

# Coverage-guided native fuzzing, a short burst per target. Unbounded
# sessions: go test -fuzz FuzzX -fuzztime 10m <pkg>.
fuzz-native:
	$(GO) test -fuzz FuzzSlicerEquivalence -fuzztime 10s ./internal/fuzzgen/
	$(GO) test -fuzz FuzzGeneratedEquivalence -fuzztime 10s ./internal/fuzzgen/
	$(GO) test -fuzz FuzzTraceReader -fuzztime 10s ./internal/trace/

# Guard: a disabled telemetry registry may cost at most 5% over none.
overhead:
	$(GO) test -run TestOverhead -bench BenchmarkTelemetryOverhead -benchtime 5x .

bench:
	$(GO) test -bench . -benchmem .

# Parallel-engine speedups: pipelined builds, batched + concurrent
# slicing vs the sequential GOMAXPROCS=1 baseline -> BENCH_parallel.json.
bench-parallel:
	$(GO) run ./cmd/experiments -exp parallel

# Memory-layout comparison: delta-varint label blocks vs the flat
# -compact=false layout -> BENCH_memory.json. RunMemory fails the target
# if OPT's compact resident label bytes exceed 0.5x the uncompacted
# baseline or any slice differs between layouts.
bench-mem:
	$(GO) run ./cmd/experiments -exp memory

# Observed-query breakdown: every criterion explained on FP/OPT/LP,
# explicit-vs-inferred edge attribution -> BENCH_explain.json. RunExplain
# fails the target if any workload's OPT traversal reports zero inferred
# edges (the optimizations would not be exercised).
bench-explain:
	$(GO) run ./cmd/experiments -exp explain

# Query flight-recorder smoke: replay the interactive query pattern on
# one small workload with the audit log attached. RunQueries fails the
# target if the log ends up empty or any record is malformed (missing
# ID, unknown backend/kind, implausible latency, no cache hits).
bench-queries:
	$(GO) run ./cmd/experiments -exp queries -workload li -queries-out $$(mktemp -u)

# Persistent-snapshot smoke: save FP+OPT graph images for one small
# workload, load them back, and compare against the trace-replay build.
# RunSnapshot fails the target if any loaded graph answers a criterion
# differently from the graphs it was saved from, or if loading is not at
# least 5x faster than rebuilding from the trace (see PERFORMANCE.md).
bench-snapshot:
	$(GO) run ./cmd/experiments -exp snapshot -workload li -snapshot-out $$(mktemp -u)

# Causal-tracing smoke: replay the interactive query pattern on one
# small workload with the per-query tracer attached. RunQtrace fails
# the target if the tail-based sampler's retained set diverges from the
# deterministic 1-in-N prediction, any retained span tree is malformed,
# or any traced query errors.
bench-qtrace:
	$(GO) run ./cmd/experiments -exp qtrace -workload li -qtrace-out $$(mktemp -u)

# Drift check: every stats.Recorder/telemetry counter and gauge name
# registered in code must appear in docs/OBSERVABILITY.md's metric
# tables, and every documented name must still exist in code.
lint-metrics:
	$(GO) run ./cmd/lintmetrics

# Planner smoke: on one small workload, answer a cold criterion by
# checkpointed re-execution and compare against the cheapest graph-build
# path, then replay the criterion stream through the cost-based planner.
# RunPlanner fails the target if the median reexec-vs-build speedup
# falls below 2x, the median planning regret (chosen backend's latency
# over the per-query best) exceeds 1.2, or any backend disagrees on a
# slice (see docs/PLANNER.md).
bench-planner:
	$(GO) run ./cmd/experiments -exp planner -workload li -planner-out $$(mktemp -u)

# Regression gate: regenerate the gated benchmark artifacts into a temp
# directory and diff against bench/baselines (fails when the median
# cross-workload delta of lp/opt batch speedup, compact resident label
# bytes, or per-backend slice times exceeds the metric's allowance —
# 20% base, scaled up for timing noise; see cmd/benchdiff). Baselines
# are machine-dependent; refresh them on the gating machine with
# `make bench-baseline`.
bench-check:
	@dir=$$(mktemp -d) && \
	$(GO) run ./cmd/experiments -exp parallel,memory,telemetry,snapshot,planner,queries,explain,qtrace \
		-parallel-out $$dir/BENCH_parallel.json \
		-memory-out $$dir/BENCH_memory.json \
		-telemetry-out $$dir/BENCH_telemetry.json \
		-snapshot-out $$dir/BENCH_snapshot.json \
		-planner-out $$dir/BENCH_planner.json \
		-queries-out $$dir/BENCH_queries.json \
		-explain-out $$dir/BENCH_explain.json \
		-qtrace-out $$dir/BENCH_qtrace.json && \
	$(GO) run ./cmd/benchdiff -current $$dir; \
	st=$$?; rm -rf $$dir; exit $$st

# Refresh the bench-check baselines (and the checked-in root artifacts)
# from this machine.
bench-baseline:
	$(GO) run ./cmd/experiments -exp parallel,memory,telemetry,queries,explain,snapshot,planner,qtrace
	mkdir -p bench/baselines
	cp BENCH_parallel.json BENCH_memory.json BENCH_telemetry.json BENCH_snapshot.json BENCH_planner.json BENCH_queries.json BENCH_explain.json BENCH_qtrace.json bench/baselines/

experiments:
	$(GO) run ./cmd/experiments -exp all
