GO ?= go

.PHONY: ci build vet fmt test overhead bench experiments

ci: build vet fmt test overhead

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l prints nonconforming files; fail if it prints anything.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Guard: a disabled telemetry registry may cost at most 5% over none.
overhead:
	$(GO) test -run TestOverhead -bench BenchmarkTelemetryOverhead -benchtime 5x .

bench:
	$(GO) test -bench . -benchmem .

experiments:
	$(GO) run ./cmd/experiments -exp all
