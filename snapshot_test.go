package slicer_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	slicer "dynslice"
	"dynslice/internal/telemetry"
	"dynslice/internal/telemetry/querylog"
)

// snapshotSrc exercises every label-producing construct the graphs
// serialize: loops, calls, arrays, pointers, and output.
const snapshotSrc = `
var out = 0;
var arr[8];
var p = 0;

func step(v) {
	arr[v % 8] = arr[v % 8] + v;
	return v * 2 + input();
}

func main() {
	var i = 0;
	p = &out;
	while (i < 12) {
		out = out + step(i);
		*p = out + arr[i % 8];
		i = i + 1;
	}
	print(out);
	print(arr[3]);
}`

var snapshotInput = []int64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p, err := slicer.Compile(snapshotSrc)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	opts := slicer.RunOptions{
		Input: snapshotInput, TrackCriteria: 16, Telemetry: reg,
		Snapshot: slicer.SnapshotOptions{Dir: dir, Read: true, Write: true},
	}
	built, err := p.Record(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer built.Close()
	if got := built.Source(); got != "build" {
		t.Fatalf("first Record source = %q, want build", got)
	}
	if n := counter(reg, "engine.snapshot.miss"); n != 1 {
		t.Fatalf("engine.snapshot.miss = %d, want 1", n)
	}
	if counter(reg, "snapshot.write.bytes") == 0 {
		t.Fatal("snapshot.write.bytes = 0 after a Write-enabled build")
	}

	loaded, err := p.Record(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if got := loaded.Source(); got != "snapshot" {
		t.Fatalf("second Record source = %q, want snapshot", got)
	}
	if n := counter(reg, "engine.snapshot.hit"); n != 1 {
		t.Fatalf("engine.snapshot.hit = %d, want 1", n)
	}
	if counter(reg, "snapshot.load.bytes") == 0 {
		t.Fatal("snapshot.load.bytes = 0 after a hit")
	}

	// Run metadata survives the round trip.
	if loaded.Steps != built.Steps || loaded.Return != built.Return {
		t.Fatalf("loaded steps/return = %d/%d, want %d/%d", loaded.Steps, loaded.Return, built.Steps, built.Return)
	}
	if len(loaded.Output) != len(built.Output) {
		t.Fatalf("loaded output %v, want %v", loaded.Output, built.Output)
	}
	if len(loaded.Criteria()) == 0 || len(loaded.Criteria()) != len(built.Criteria()) {
		t.Fatalf("loaded criteria %v, want %v", loaded.Criteria(), built.Criteria())
	}

	// Every tracked criterion slices identically on both backends.
	for _, name := range []string{"FP", "OPT"} {
		var bs, ls *slicer.Slicer
		if name == "FP" {
			bs, ls = built.FP(), loaded.FP()
		} else {
			bs, ls = built.OPT(), loaded.OPT()
		}
		want, err := bs.SliceAddrs(built.Criteria())
		if err != nil {
			t.Fatal(err)
		}
		got, err := ls.SliceAddrs(loaded.Criteria())
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !want[i].Raw().Equal(got[i].Raw()) {
				t.Fatalf("%s: slice %d differs between built and snapshot-loaded graphs", name, i)
			}
		}
	}

	// LP needs the trace file, which a snapshot does not carry.
	if _, err := loaded.LP().SliceVar("out"); err == nil {
		t.Fatal("LP on a snapshot-loaded recording should error")
	} else if !strings.Contains(err.Error(), "snapshot") {
		t.Fatalf("LP error %q should mention the snapshot", err)
	}
}

// TestSnapshotKeyMiss: changing the input (or config) must miss the cache.
func TestSnapshotKeyMiss(t *testing.T) {
	dir := t.TempDir()
	p, err := slicer.Compile(snapshotSrc)
	if err != nil {
		t.Fatal(err)
	}
	first, err := p.Record(slicer.RunOptions{
		Input:    snapshotInput,
		Snapshot: slicer.SnapshotOptions{Dir: dir, Read: true, Write: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	other := append([]int64{99}, snapshotInput[1:]...)
	second, err := p.Record(slicer.RunOptions{
		Input:    other,
		Snapshot: slicer.SnapshotOptions{Dir: dir, Read: true, Write: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if second.Source() != "build" {
		t.Fatal("different input must not hit the cache")
	}
	plain, err := p.Record(slicer.RunOptions{
		Input: snapshotInput, PlainLabels: true,
		Snapshot: slicer.SnapshotOptions{Dir: dir, Read: true, Write: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.Source() != "build" {
		t.Fatal("different label layout must not hit the cache")
	}
}

// TestSnapshotCorruptionFallback: a damaged snapshot is never an error and
// never a wrong slice — Record counts the classified failure and rebuilds.
func TestSnapshotCorruptionFallback(t *testing.T) {
	dir := t.TempDir()
	p, err := slicer.Compile(snapshotSrc)
	if err != nil {
		t.Fatal(err)
	}
	built, err := p.Record(slicer.RunOptions{
		Input:    snapshotInput,
		Snapshot: slicer.SnapshotOptions{Dir: dir, Read: true, Write: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer built.Close()
	want, err := built.OPT().SliceVar("out")
	if err != nil {
		t.Fatal(err)
	}

	files, err := filepath.Glob(filepath.Join(dir, "*.dysnap"))
	if err != nil || len(files) != 1 {
		t.Fatalf("snapshot files = %v (err %v), want exactly one", files, err)
	}
	orig, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}

	mutate := map[string]func([]byte) []byte{
		"flip-header":  func(b []byte) []byte { b[0] ^= 0xff; return b },
		"flip-version": func(b []byte) []byte { b[4] ^= 0xff; return b },
		"flip-middle":  func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b },
		"flip-tail":    func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"truncate":     func(b []byte) []byte { return b[:len(b)/3] },
		"empty":        func(b []byte) []byte { return b[:0] },
	}
	for name, fn := range mutate {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(files[0], fn(append([]byte(nil), orig...)), 0o644); err != nil {
				t.Fatal(err)
			}
			reg := telemetry.New()
			rec, err := p.Record(slicer.RunOptions{
				Input: snapshotInput, Telemetry: reg,
				Snapshot: slicer.SnapshotOptions{Dir: dir, Read: true, Write: false},
			})
			if err != nil {
				t.Fatalf("corrupt snapshot must fall back, got error: %v", err)
			}
			defer rec.Close()
			if rec.Source() != "build" {
				t.Fatal("corrupt snapshot must not be served")
			}
			if n := counter(reg, "engine.snapshot.fallback"); n != 1 {
				t.Fatalf("engine.snapshot.fallback = %d, want 1", n)
			}
			var classified int64
			for _, cn := range reg.CounterNames() {
				if strings.HasPrefix(cn, "snapshot.read.err.") {
					classified += counter(reg, cn)
				}
			}
			if classified != 1 {
				t.Fatalf("classified snapshot.read.err.* total = %d, want 1", classified)
			}
			got, err := rec.OPT().SliceVar("out")
			if err != nil {
				t.Fatal(err)
			}
			if !got.Raw().Equal(want.Raw()) {
				t.Fatal("fallback build answered a different slice")
			}
		})
	}
}

// TestSnapshotAuditSource: audit records carry the graph provenance.
func TestSnapshotAuditSource(t *testing.T) {
	dir := t.TempDir()
	p, err := slicer.Compile(snapshotSrc)
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func(wantSource string) {
		t.Helper()
		qlog := querylog.New(64)
		rec, err := p.Record(slicer.RunOptions{
			Input: snapshotInput, QueryLog: qlog,
			Snapshot: slicer.SnapshotOptions{Dir: dir, Read: true, Write: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Close()
		if _, err := rec.OPT().SliceVar("out"); err != nil {
			t.Fatal(err)
		}
		recs := qlog.Recent(1)
		if len(recs) != 1 || recs[0].Source != wantSource {
			t.Fatalf("audit source = %+v, want %q", recs, wantSource)
		}
	}
	runOnce("build")
	runOnce("snapshot")
}

func counter(reg *telemetry.Registry, name string) int64 {
	return reg.Counter(name).Value()
}
